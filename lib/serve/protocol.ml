module Json = Socy_obs.Json
module Scheme = Socy_order.Scheme
module H = Socy_order.Heuristics
module C = Socy_logic.Circuit
module S = Socy_benchmarks.Suite
module D = Socy_defects.Distribution
module Model = Socy_defects.Model
module P = Socy_core.Pipeline

let version = 1

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type source = Benchmark of string | Fault_tree of string

type query = {
  source : source;
  lambda : float;
  alpha : float;
  p_lethal : float;
  epsilon : float;
  mv_order : Scheme.mv_order;
  bit_order : Scheme.bit_order;
  node_limit : int option;
  cpu_limit : float option;
  reorder : bool;
  par_domains : int option;
}

type meth =
  | Eval
  | Conditional_yields
  | Importance
  | Stats
  | Metrics
  | Health
  | Shutdown

type request = { id : Json.t; meth : meth; query : query option }

let meth_name = function
  | Eval -> "eval"
  | Conditional_yields -> "conditional-yields"
  | Importance -> "importance"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Health -> "health"
  | Shutdown -> "shutdown"

let meth_of_name = function
  | "eval" -> Some Eval
  | "conditional-yields" -> Some Conditional_yields
  | "importance" -> Some Importance
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "health" -> Some Health
  | "shutdown" -> Some Shutdown
  | _ -> None

let is_evaluation = function
  | Eval | Conditional_yields | Importance -> true
  | Stats | Metrics | Health | Shutdown -> false

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Unsupported_version
  | Budget_exhausted
  | Admission_rejected
  | Shutting_down
  | Internal

let error_code_name = function
  | Parse_error -> "parse-error"
  | Invalid_request -> "invalid-request"
  | Unknown_method -> "unknown-method"
  | Unsupported_version -> "unsupported-version"
  | Budget_exhausted -> "budget-exhausted"
  | Admission_rejected -> "admission-rejected"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Orderings on the wire                                               *)
(* ------------------------------------------------------------------ *)

(* The wire names are the CLI names: the Scheme.*_name strings; parsing
   delegates to the canonical Scheme inverses so every surface accepts
   exactly the same spellings. *)

let mv_order_of_name = Scheme.mv_order_of_name

let bit_order_of_name = Scheme.bit_order_of_name

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let query_to_json q =
  let source_field =
    match q.source with
    | Benchmark b -> ("benchmark", Json.String b)
    | Fault_tree e -> ("fault_tree", Json.String e)
  in
  Json.Obj
    ([
       source_field;
       ("lambda", Json.Float q.lambda);
       ("alpha", Json.Float q.alpha);
       ("p_lethal", Json.Float q.p_lethal);
       ("epsilon", Json.Float q.epsilon);
       ("mv_order", Json.String (Scheme.mv_order_name q.mv_order));
       ("bit_order", Json.String (Scheme.bit_order_name q.bit_order));
     ]
    @ (match q.node_limit with
      | None -> []
      | Some n -> [ ("node_limit", Json.Int n) ])
    @ (match q.cpu_limit with
      | None -> []
      | Some s -> [ ("cpu_limit", Json.Float s) ])
    (* Emitted only when set, so requests from older clients round-trip
       byte-identically. *)
    @ (match q.reorder with
      | false -> []
      | true -> [ ("reorder", Json.Bool true) ])
    @
    match q.par_domains with
    | None -> []
    | Some d -> [ ("par_domains", Json.Int d) ])

let request_to_json r =
  Json.Obj
    ([ ("socyield-serve", Json.Int version) ]
    @ (match r.id with Json.Null -> [] | id -> [ ("id", id) ])
    @ [ ("method", Json.String (meth_name r.meth)) ]
    @
    match r.query with
    | None -> []
    | Some q -> [ ("params", query_to_json q) ])

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let float_field ?default obj name =
  match Json.member name obj with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Invalid_request, Printf.sprintf "missing field %S" name))
  | Some v -> (
      match Json.to_float v with
      | Some f when Float.is_finite f -> Ok f
      | _ -> Error (Invalid_request, Printf.sprintf "field %S must be a finite number" name))

let query_of_json obj =
  match obj with
  | Json.Obj _ ->
      let* source =
        match (Json.member "benchmark" obj, Json.member "fault_tree" obj) with
        | Some _, Some _ ->
            Error (Invalid_request, "give either \"benchmark\" or \"fault_tree\", not both")
        | Some (Json.String b), None -> Ok (Benchmark b)
        | None, Some (Json.String e) -> Ok (Fault_tree e)
        | Some _, None | None, Some _ ->
            Error (Invalid_request, "\"benchmark\"/\"fault_tree\" must be strings")
        | None, None ->
            Error (Invalid_request, "params needs \"benchmark\" or \"fault_tree\"")
      in
      let* lambda = float_field ~default:10.0 obj "lambda" in
      let* alpha = float_field ~default:S.alpha obj "alpha" in
      let* p_lethal = float_field ~default:S.p_lethal obj "p_lethal" in
      let* epsilon = float_field ~default:S.epsilon obj "epsilon" in
      let* mv_order =
        match Json.member "mv_order" obj with
        | None -> Ok (Scheme.Heur H.Weight)
        | Some (Json.String s) -> (
            match mv_order_of_name s with
            | Some mv -> Ok mv
            | None -> Error (Invalid_request, Printf.sprintf "unknown mv_order %S" s))
        | Some _ -> Error (Invalid_request, "\"mv_order\" must be a string")
      in
      let* bit_order =
        match Json.member "bit_order" obj with
        | None -> Ok Scheme.Ml
        | Some (Json.String s) -> (
            match bit_order_of_name s with
            | Some b -> Ok b
            | None -> Error (Invalid_request, Printf.sprintf "unknown bit_order %S" s))
        | Some _ -> Error (Invalid_request, "\"bit_order\" must be a string")
      in
      let* node_limit =
        match Json.member "node_limit" obj with
        | None -> Ok None
        | Some (Json.Int n) when n > 0 -> Ok (Some n)
        | Some _ -> Error (Invalid_request, "\"node_limit\" must be a positive integer")
      in
      let* cpu_limit =
        match Json.member "cpu_limit" obj with
        | None -> Ok None
        | Some v -> (
            match Json.to_float v with
            | Some s when Float.is_finite s && s > 0.0 -> Ok (Some s)
            | _ -> Error (Invalid_request, "\"cpu_limit\" must be a positive number")
        )
      in
      let* reorder =
        match Json.member "reorder" obj with
        | None -> Ok false
        | Some (Json.Bool b) -> Ok b
        | Some _ -> Error (Invalid_request, "\"reorder\" must be a boolean")
      in
      let* par_domains =
        match Json.member "par_domains" obj with
        | None -> Ok None
        | Some (Json.Int d) when d >= 1 -> Ok (Some d)
        | Some _ ->
            Error (Invalid_request, "\"par_domains\" must be a positive integer")
      in
      Ok
        {
          source;
          lambda;
          alpha;
          p_lethal;
          epsilon;
          mv_order;
          bit_order;
          node_limit;
          cpu_limit;
          reorder;
          par_domains;
        }
  | _ -> Error (Invalid_request, "\"params\" must be an object")

let request_of_json j =
  match j with
  | Json.Obj _ ->
      let* () =
        match Json.member "socyield-serve" j with
        | Some (Json.Int v) when v = version -> Ok ()
        | Some (Json.Int v) ->
            Error
              ( Unsupported_version,
                Printf.sprintf "protocol version %d not supported (this server speaks %d)"
                  v version )
        | Some _ -> Error (Unsupported_version, "\"socyield-serve\" must be an integer")
        | None ->
            Error
              ( Invalid_request,
                "missing \"socyield-serve\" version field (expected {\"socyield-serve\": 1, ...})"
              )
      in
      let id = Option.value ~default:Json.Null (Json.member "id" j) in
      let* meth =
        match Json.member "method" j with
        | Some (Json.String s) -> (
            match meth_of_name s with
            | Some m -> Ok m
            | None -> Error (Unknown_method, Printf.sprintf "unknown method %S" s))
        | Some _ -> Error (Invalid_request, "\"method\" must be a string")
        | None -> Error (Invalid_request, "missing \"method\" field")
      in
      let* query =
        if is_evaluation meth then
          match Json.member "params" j with
          | None ->
              Error
                ( Invalid_request,
                  Printf.sprintf "method %S needs a \"params\" object" (meth_name meth) )
          | Some p ->
              let* q = query_of_json p in
              Ok (Some q)
        else Ok None
      in
      Ok { id; meth; query }
  | _ -> Error (Invalid_request, "request must be a JSON object")

let parse_request line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error (Parse_error, msg)
  | j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let envelope ~id ~status ?cache ?elapsed_ms body =
  Json.Obj
    ([ ("socyield-serve", Json.Int version); ("id", id); ("status", Json.String status) ]
    @ body
    @ (match cache with None -> [] | Some c -> [ ("cache", Json.String c) ])
    @
    match elapsed_ms with
    | None -> []
    | Some ms -> [ ("elapsed_ms", Json.Float ms) ])

let ok_response ~id ?cache ?elapsed_ms result =
  envelope ~id ~status:"ok" ?cache ?elapsed_ms [ ("result", result) ]

let error_response ~id ?cache ?details code msg =
  envelope ~id ~status:"error" ?cache
    ([
       ( "error",
         Json.Obj
           ([
              ("code", Json.String (error_code_name code));
              ("message", Json.String msg);
            ]
           @
           match details with
           | None | Some [] -> []
           | Some d -> [ ("details", Json.Obj d) ]) );
     ])

let failure_error f =
  let msg = P.failure_to_string f in
  let stage = P.failure_stage f in
  match f with
  | P.Node_budget { peak; _ } ->
      ( Budget_exhausted,
        msg,
        [
          ("kind", Json.String "node-budget");
          ("stage", Json.String stage);
          ("peak_at_failure", Json.Int peak);
        ] )
  | P.Cpu_budget { elapsed; _ } ->
      ( Budget_exhausted,
        msg,
        [
          ("kind", Json.String "cpu-budget");
          ("stage", Json.String stage);
          ("elapsed_s", Json.Float elapsed);
        ] )
  | P.Batch_cancelled ->
      (Internal, msg, [ ("kind", Json.String "batch-cancelled") ])

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

let report_fields (r : P.report) =
  [
    ("yield_lower", Json.Float r.P.yield_lower);
    ("yield_upper", Json.Float r.P.yield_upper);
    ("p_unusable", Json.Float r.P.p_unusable);
    ("m", Json.Int r.P.m);
    ("p_lethal", Json.Float r.P.p_lethal);
    ("robdd_peak", Json.Int r.P.robdd_peak);
    ("robdd_size", Json.Int r.P.robdd_size);
    ("romdd_size", Json.Int r.P.romdd_size);
    ("num_binary_vars", Json.Int r.P.num_binary_vars);
    ("num_groups", Json.Int r.P.num_groups);
    ("gate_count", Json.Int r.P.gate_count);
    ("reorder_runs", Json.Int r.P.reorder_runs);
    ("reorder_swaps", Json.Int r.P.reorder_swaps);
  ]

(* ------------------------------------------------------------------ *)
(* Query resolution                                                    *)
(* ------------------------------------------------------------------ *)

type resolved = {
  circuit : C.t;
  model : Model.t;
  names : string array;
}

let resolve q =
  let model_of affect =
    match Model.create (D.negative_binomial ~mean:q.lambda ~alpha:q.alpha) affect with
    | m -> Ok m
    | exception Invalid_argument msg -> Error msg
    | exception Failure msg -> Error msg
  in
  match q.source with
  | Benchmark name -> (
      match S.by_name name with
      | exception Not_found -> Error (Printf.sprintf "unknown benchmark %S" name)
      | instance ->
          let* model = model_of instance.S.affect in
          Ok { circuit = instance.S.circuit; model; names = instance.S.component_names })
  | Fault_tree expr -> (
      match Socy_logic.Parse.fault_tree ~name:"serve" expr with
      | exception Socy_logic.Parse.Syntax_error msg ->
          Error (Printf.sprintf "fault-tree parse error: %s" msg)
      | circuit ->
          let c = circuit.C.num_inputs in
          if c = 0 then Error "fault tree references no component"
          else if not (Float.is_finite q.p_lethal) || q.p_lethal <= 0.0 then
            Error "p_lethal must be positive"
          else
            let* model = model_of (Array.make c (q.p_lethal /. float_of_int c)) in
            let names = Array.init c (fun i -> Printf.sprintf "x%d" i) in
            Ok { circuit; model; names })

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

(* Structural circuit serialization: postorder indices, so two expressions
   building the same DAG (whatever their node ids) serialize identically. *)
let add_circuit buf (c : C.t) =
  let index = Hashtbl.create 64 in
  let nodes = C.postorder c in
  List.iteri
    (fun i (n : C.node) ->
      Hashtbl.replace index n.C.id i;
      match n.C.desc with
      | C.Input k -> Buffer.add_string buf (Printf.sprintf "I%d;" k)
      | C.Const b -> Buffer.add_string buf (if b then "C1;" else "C0;")
      | C.Gate (kind, args) ->
          Buffer.add_char buf 'G';
          Buffer.add_string buf (C.gate_kind_name kind);
          Buffer.add_char buf '(';
          Array.iter
            (fun (a : C.node) ->
              Buffer.add_string buf (string_of_int (Hashtbl.find index a.C.id));
              Buffer.add_char buf ',')
            args;
          Buffer.add_string buf ");")
    nodes;
  Buffer.add_string buf
    (Printf.sprintf "out=%d/in=%d" (Hashtbl.find index c.C.output.C.id) c.C.num_inputs)

let cache_key ~meth ~resolved ~node_limit ~cpu_limit ~par_domains q =
  let buf = Buffer.create 512 in
  add_circuit buf resolved.circuit;
  (* Exact bit patterns: "%h" round-trips floats losslessly, so two models
     are keyed together iff they are numerically identical. *)
  Buffer.add_string buf (Printf.sprintf "|l=%h|a=%h|" q.lambda q.alpha);
  Array.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%h," p))
    resolved.model.Model.affect;
  (* The reorder flag keys on what the client *requested*, never on any
     post-sift permutation: sifting is walked back to the static scheme
     before evaluation, so results are bit-identical either way, but the
     two runs differ in reported reorder statistics.

     [par_domains] is the *effective* team size (after the server default
     and the reorder-wins fallback). The yield and diagram sizes are
     bit-identical across team sizes, but the peak/GC report fields are
     engine-specific, so parallel and sequential runs must not share a
     cache entry. *)
  Buffer.add_string buf
    (Printf.sprintf "|e=%h|mv=%s|bit=%s|nl=%d|cl=%s|r=%d|pd=%d|m=%s" q.epsilon
       (Scheme.mv_order_name q.mv_order)
       (Scheme.bit_order_name q.bit_order)
       node_limit
       (match cpu_limit with None -> "-" | Some s -> Printf.sprintf "%h" s)
       (if q.reorder then 1 else 0)
       par_domains
       (meth_name meth));
  Digest.to_hex (Digest.string (Buffer.contents buf))
