module Obs = Socy_obs.Obs
module Trace = Socy_obs.Trace
module Sink = Socy_obs.Sink
module Json = Socy_obs.Json
module Ctx = Socy_obs.Ctx
module Log = Socy_obs.Log
module Export = Socy_obs.Export
module Pool = Socy_batch.Pool
module P = Socy_core.Pipeline
module Model = Socy_defects.Model
module Proto = Protocol

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  socket_path : string;
  domains : int;
  cache_capacity : int;
  max_inflight : int;
  default_node_limit : int;
  max_node_limit : int;
  default_cpu_limit : float option;
  max_cpu_limit : float option;
  default_par_domains : int;
  backlog : int;
  unlink_existing : bool;
  slow_ms : float option;
  metrics_file : string option;
  metrics_interval : float;
}

let config ?domains ?(cache_capacity = 128) ?max_inflight
    ?(default_node_limit = 40_000_000) ?max_node_limit ?default_cpu_limit
    ?max_cpu_limit ?(default_par_domains = 1) ?(backlog = 64)
    ?(unlink_existing = false) ?slow_ms ?metrics_file
    ?(metrics_interval = 10.0) ~socket_path () =
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Server.config: domains < 1"
    | None -> max 1 (Pool.default_domains () - 1)
  in
  if default_par_domains < 1 then
    invalid_arg "Server.config: default_par_domains < 1";
  (match slow_ms with
  | Some s when not (Float.is_finite s) || s < 0.0 ->
      invalid_arg "Server.config: slow_ms must be a non-negative number"
  | _ -> ());
  if not (Float.is_finite metrics_interval) || metrics_interval <= 0.0 then
    invalid_arg "Server.config: metrics_interval must be positive";
  let max_inflight =
    match max_inflight with Some m -> max 1 m | None -> 4 * domains
  in
  (* The cap is authoritative: a cap below the stock default also lowers
     the default, so a request that omits its budget is always
     admissible. *)
  let max_node_limit =
    match max_node_limit with
    | Some m when m >= 1 -> m
    | Some _ -> invalid_arg "Server.config: max_node_limit < 1"
    | None -> default_node_limit
  in
  let default_node_limit = min default_node_limit max_node_limit in
  let default_cpu_limit =
    match (default_cpu_limit, max_cpu_limit) with
    | Some d, Some cap -> Some (Float.min d cap)
    | (Some _ | None), _ -> default_cpu_limit
  in
  {
    socket_path;
    domains;
    cache_capacity;
    max_inflight;
    default_node_limit;
    max_node_limit;
    default_cpu_limit;
    max_cpu_limit;
    default_par_domains;
    backlog;
    unlink_existing;
    slow_ms;
    metrics_file;
    metrics_interval;
  }

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let all_meths =
  [
    Proto.Eval;
    Proto.Conditional_yields;
    Proto.Importance;
    Proto.Stats;
    Proto.Metrics;
    Proto.Health;
    Proto.Shutdown;
  ]

let requests_counter = Obs.counter "serve.requests"
let errors_counter = Obs.counter "serve.errors"
let inflight_gauge = Obs.gauge "serve.inflight"
let connections_counter = Obs.counter "serve.connections"
let connections_gauge = Obs.gauge "serve.connections.open"

let meth_counters =
  List.map
    (fun m -> (m, Obs.counter ("serve.requests." ^ Proto.meth_name m)))
    all_meths

let latency_hists =
  let buckets = [| 1e-4; 1e-3; 1e-2; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |] in
  List.map
    (fun m -> (m, Obs.histogram ~buckets ("serve.latency." ^ Proto.meth_name m)))
    all_meths

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type state = Running | Draining | Stopped

(* What the cache stores: the deterministic part of a reply. *)
type outcome = Payload of Json.t | Failed of P.failure

type conn = { fd : Unix.file_descr; mutable conn_closed : bool }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  executor : Pool.Executor.t;
  cache : outcome Cache.t;
  lock : Mutex.t;
  drained : Condition.t;
  mutable state : state;
  mutable listener_closed : bool;
  mutable active : int;  (* requests currently being handled *)
  mutable conns : conn list;
  mutable threads : Thread.t list;
  counts : (Proto.meth * int ref) list;  (* per-method, for the stats endpoint *)
  mutable error_count : int;
  started_at : float;
  rids : int Atomic.t;  (* monotonic request-id mint *)
  mutable metrics_thread : Thread.t option;
}

let create cfg =
  if cfg.unlink_existing && Sys.file_exists cfg.socket_path then (
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf "socyield serve: cannot bind %s: %s%s" cfg.socket_path
           (Unix.error_message e)
           (if e = Unix.EADDRINUSE then
              " (daemon already running? remove the socket file or pass --force)"
            else "")));
  Unix.listen fd cfg.backlog;
  {
    cfg;
    listen_fd = fd;
    executor = Pool.Executor.create ~domains:cfg.domains ();
    cache = Cache.create ~probes:"serve.cache" ~capacity:cfg.cache_capacity ();
    lock = Mutex.create ();
    drained = Condition.create ();
    state = Running;
    listener_closed = false;
    active = 0;
    conns = [];
    threads = [];
    counts = List.map (fun m -> (m, ref 0)) all_meths;
    error_count = 0;
    started_at = Obs.now ();
    rids = Atomic.make 0;
    metrics_thread = None;
  }

let stop t =
  Mutex.lock t.lock;
  let was_running = t.state = Running in
  (match t.state with Running -> t.state <- Draining | Draining | Stopped -> ());
  Mutex.unlock t.lock;
  if was_running then begin
    (* Wake the thread blocked in [accept] — merely closing the fd would
       not (Linux leaves the accepter asleep). [shutdown] wakes it on
       Linux; the dummy connection covers platforms where it doesn't. The
       loop re-checks the state after every accept and exits. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Stats / health payloads                                             *)
(* ------------------------------------------------------------------ *)

let cache_stats_json t =
  let s = Cache.stats t.cache in
  let looked = s.Cache.hits + s.Cache.misses in
  Json.Obj
    [
      ("size", Json.Int s.Cache.size);
      ("capacity", Json.Int s.Cache.capacity);
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("evictions", Json.Int s.Cache.evictions);
      ( "hit_rate",
        Json.Float
          (if looked = 0 then 0.0 else float_of_int s.Cache.hits /. float_of_int looked)
      );
    ]

let stats_json t =
  Mutex.lock t.lock;
  let active = t.active in
  let open_conns = List.length t.conns in
  let counts = List.map (fun (m, r) -> (Proto.meth_name m, Json.Int !r)) t.counts in
  let errors = t.error_count in
  Mutex.unlock t.lock;
  Json.Obj
    [
      ("schema", Json.String "socyield-serve-stats/1");
      ("uptime_s", Json.Float (Obs.now () -. t.started_at));
      ("domains", Json.Int t.cfg.domains);
      ("in_flight", Json.Int (Pool.Executor.in_flight t.executor));
      ("active_requests", Json.Int active);
      ("open_connections", Json.Int open_conns);
      ("requests", Json.Obj (counts @ [ ("errors", Json.Int errors) ]));
      ("cache", cache_stats_json t);
      (* Timeline truncation is an operational signal: a non-zero dropped
         count means the Perfetto export is missing the oldest events. *)
      ( "trace",
        Json.Obj
          [
            ("buffered", Json.Int (Trace.event_count ()));
            ("dropped", Json.Int (Trace.dropped_count ()));
          ] );
      ( "log",
        Json.Obj
          [
            ( "level",
              Json.String
                (match Log.current_level () with
                | None -> "off"
                | Some l -> Log.level_name l) );
            ("emitted", Json.Int (Log.emitted_count ()));
            ("dropped", Json.Int (Log.dropped_count ()));
          ] );
      ("metrics", Sink.snapshot_to_json (Obs.snapshot ()));
    ]

let health_json t =
  Json.Obj
    [
      ("status", Json.String "ok");
      ("protocol", Json.String (Printf.sprintf "socyield-serve/%d" Proto.version));
      ("uptime_s", Json.Float (Obs.now () -. t.started_at));
    ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Per-stage wall times as a JSON object, for the slow-query log. *)
let stage_times_field times =
  ( "stage_ms",
    Json.Obj (List.map (fun (k, s) -> (k, Json.Float (s *. 1000.0))) times) )

(* Returns the cacheable outcome plus non-cached metadata (stage times,
   peak node counts) that only the slow-query log consumes. *)
let compute meth (resolved : Proto.resolved) (q : Proto.query) ~node_limit
    ~cpu_limit ~par_domains ~par_runner =
  let pconfig =
    P.Config.make ~epsilon:q.Proto.epsilon ~mv_order:q.Proto.mv_order
      ~bit_order:q.Proto.bit_order ~node_limit ?cpu_limit
      ~reorder:q.Proto.reorder ~par_domains ?par_runner ()
  in
  match meth with
  | Proto.Eval -> (
      match P.run ~config:pconfig resolved.Proto.circuit resolved.Proto.model with
      | Ok r ->
          ( Payload (Json.Obj [ ("report", Json.Obj (Proto.report_fields r)) ]),
            [
              stage_times_field r.P.stage_times;
              ("robdd_peak", Json.Int r.P.robdd_peak);
            ] )
      | Error f -> (Failed f, []))
  | Proto.Conditional_yields -> (
      let lethal = Model.to_lethal resolved.Proto.model in
      match P.Artifacts.build ~config:pconfig resolved.Proto.circuit lethal with
      | Error f -> (Failed f, [])
      | Ok a ->
          let ys = P.Artifacts.conditional_yields a in
          ( Payload
              (Json.Obj
                 [
                   ("m", Json.Int a.P.Artifacts.m);
                   ("p_lethal", Json.Float lethal.Model.p_lethal);
                   ( "conditional_yields",
                     Json.List
                       (Array.to_list (Array.map (fun y -> Json.Float y) ys)) );
                 ]),
            [ stage_times_field a.P.Artifacts.stage_seconds ] ))
  | Proto.Importance -> (
      (* The base run first, so a budget blow-up is reported typed instead
         of as Importance's Invalid_argument. *)
      match P.run ~config:pconfig resolved.Proto.circuit resolved.Proto.model with
      | Error f -> (Failed f, [])
      | Ok r ->
          let entries =
            Socy_core.Importance.yield_gain ~config:pconfig
              ~names:resolved.Proto.names resolved.Proto.circuit
              resolved.Proto.model
          in
          ( Payload
              (Json.Obj
                 [
                   ( "components",
                     Json.List
                       (List.map
                          (fun (e : Socy_core.Importance.entry) ->
                            Json.Obj
                              [
                                ("component", Json.Int e.Socy_core.Importance.component);
                                ("name", Json.String e.Socy_core.Importance.name);
                                ("base_yield", Json.Float e.Socy_core.Importance.base_yield);
                                ( "hardened_yield",
                                  Json.Float e.Socy_core.Importance.hardened_yield );
                                ("gain", Json.Float e.Socy_core.Importance.gain);
                              ])
                          entries) );
                 ]),
            [ stage_times_field r.P.stage_times ] ))
  | Proto.Stats | Proto.Metrics | Proto.Health | Proto.Shutdown -> assert false

let reply_of_outcome ~cache ~elapsed_ms id = function
  | Payload result -> Proto.ok_response ~id ~cache ~elapsed_ms result
  | Failed f ->
      let code, msg, details = Proto.failure_error f in
      Proto.error_response ~id ~cache ~details code msg

let log_reject code msg details =
  Log.warn "serve.reject"
    ~fields:(("code", Json.String (Proto.error_code_name code)) :: details)
    msg

let eval_reply t (req : Proto.request) ~t0 =
  let q = Option.get req.Proto.query in
  match Proto.resolve q with
  | Error msg ->
      log_reject Proto.Invalid_request msg [];
      Proto.error_response ~id:req.Proto.id Proto.Invalid_request msg
  | Ok resolved -> (
      let node_limit =
        Option.value q.Proto.node_limit ~default:t.cfg.default_node_limit
      in
      let cpu_limit =
        match q.Proto.cpu_limit with
        | None -> t.cfg.default_cpu_limit
        | Some _ as s -> s
      in
      let over_cpu_cap =
        match (cpu_limit, t.cfg.max_cpu_limit) with
        | Some c, Some cap -> c > cap
        | _ -> false
      in
      if node_limit > t.cfg.max_node_limit then begin
        let msg =
          Printf.sprintf "node_limit %d exceeds the server cap %d" node_limit
            t.cfg.max_node_limit
        in
        let details =
          [
            ("requested_node_limit", Json.Int node_limit);
            ("cap", Json.Int t.cfg.max_node_limit);
          ]
        in
        log_reject Proto.Admission_rejected msg details;
        Proto.error_response ~id:req.Proto.id ~details Proto.Admission_rejected
          msg
      end
      else if over_cpu_cap then begin
        let msg =
          Printf.sprintf "cpu_limit %g exceeds the server cap %g"
            (Option.value cpu_limit ~default:0.0)
            (Option.value t.cfg.max_cpu_limit ~default:0.0)
        in
        let details =
          [
            ( "requested_cpu_limit",
              Json.Float (Option.value cpu_limit ~default:0.0) );
            ("cap", Json.Float (Option.value t.cfg.max_cpu_limit ~default:0.0));
          ]
        in
        log_reject Proto.Admission_rejected msg details;
        Proto.error_response ~id:req.Proto.id ~details Proto.Admission_rejected
          msg
      end
      else
        (* Effective team size: request override, else the server default;
           reorder wins over parallelism (the sequential engine is the
           only one that can sift), matching Pipeline's own rule, so the
           cache key reflects the engine that actually runs. *)
        let par_domains =
          if q.Proto.reorder then 1
          else
            Option.value q.Proto.par_domains
              ~default:t.cfg.default_par_domains
        in
        let key =
          Proto.cache_key ~meth:req.Proto.meth ~resolved ~node_limit ~cpu_limit
            ~par_domains q
        in
        let finish ~cache ?(meta = []) outcome =
          let elapsed_ms = (Obs.now () -. t0) *. 1000.0 in
          Trace.instant "serve.request"
            ~args:
              [
                ("method", Json.String (Proto.meth_name req.Proto.meth));
                ("cache", Json.String cache);
                ("ms", Json.Float elapsed_ms);
              ];
          if Log.enabled_for Log.Info then
            Log.info "serve.request"
              ~fields:
                [
                  ("method", Json.String (Proto.meth_name req.Proto.meth));
                  ("cache", Json.String cache);
                  ("ms", Json.Float elapsed_ms);
                ]
              (Printf.sprintf "%s (%s) in %.1f ms"
                 (Proto.meth_name req.Proto.meth)
                 cache elapsed_ms);
          (* The slow-query log: everything an operator needs to explain
             the latency without re-running — the cache-key digest (joins
             repeat offenders), per-stage wall times, peak node counts and
             the effective engine settings. *)
          (match t.cfg.slow_ms with
          | Some thresh when elapsed_ms >= thresh ->
              Log.warn "serve.slow"
                ~fields:
                  ([
                     ("method", Json.String (Proto.meth_name req.Proto.meth));
                     ("cache", Json.String cache);
                     ("ms", Json.Float elapsed_ms);
                     ("threshold_ms", Json.Float thresh);
                     ("key", Json.String key);
                     ("node_limit", Json.Int node_limit);
                     ("reorder", Json.Bool q.Proto.reorder);
                     ("par_domains", Json.Int par_domains);
                   ]
                  @ meta)
                (Printf.sprintf "slow request: %s took %.1f ms (threshold %g)"
                   (Proto.meth_name req.Proto.meth)
                   elapsed_ms thresh)
          | _ -> ());
          reply_of_outcome ~cache ~elapsed_ms req.Proto.id outcome
        in
        match Cache.find t.cache key with
        | Some outcome -> finish ~cache:"hit" outcome
        | None ->
            if Pool.Executor.in_flight t.executor >= t.cfg.max_inflight then begin
              let msg =
                Printf.sprintf
                  "server is saturated (%d runs in flight, max %d) — retry later"
                  (Pool.Executor.in_flight t.executor)
                  t.cfg.max_inflight
              in
              let details = [ ("max_inflight", Json.Int t.cfg.max_inflight) ] in
              log_reject Proto.Admission_rejected msg details;
              Proto.error_response ~id:req.Proto.id ~details
                Proto.Admission_rejected msg
            end
            else (
              Obs.set inflight_gauge
                (float_of_int (Pool.Executor.in_flight t.executor + 1));
              (* Intra-problem parallelism reuses the same executor
                 domains ([parallel_tasks] claim-drains with the running
                 request participating, so saturation cannot deadlock) —
                 no second domain team is ever spawned by the daemon. *)
              let par_runner =
                if par_domains > 1 then
                  Some (Pool.Executor.parallel_tasks t.executor)
                else None
              in
              match
                Pool.Executor.run t.executor (fun () ->
                    compute req.Proto.meth resolved q ~node_limit ~cpu_limit
                      ~par_domains ~par_runner)
              with
              | outcome, meta ->
                  Obs.set inflight_gauge
                    (float_of_int (Pool.Executor.in_flight t.executor));
                  (* Deterministic outcomes are cached; CPU-budget failures
                     depend on machine load, so a retry may succeed. *)
                  (match outcome with
                  | Payload _ | Failed (P.Node_budget _) -> Cache.add t.cache key outcome
                  | Failed (P.Cpu_budget _ | P.Batch_cancelled) -> ());
                  finish ~cache:"miss" ~meta outcome
              | exception e ->
                  Obs.set inflight_gauge
                    (float_of_int (Pool.Executor.in_flight t.executor));
                  Proto.error_response ~id:req.Proto.id Proto.Internal
                    (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* Returns (reply, keep connection open, initiate shutdown after reply). *)
let handle_line t ~t0 line =
  match Proto.parse_request line with
  | Error (code, msg) -> (Proto.error_response ~id:Json.Null code msg, true, false)
  | Ok req -> (
      (match List.assoc_opt req.Proto.meth t.counts with
      | Some r ->
          Mutex.lock t.lock;
          incr r;
          Mutex.unlock t.lock
      | None -> ());
      Obs.incr requests_counter;
      (match List.assoc_opt req.Proto.meth meth_counters with
      | Some c -> Obs.incr c
      | None -> ());
      match req.Proto.meth with
      | Proto.Health -> (Proto.ok_response ~id:req.Proto.id (health_json t), true, false)
      | Proto.Stats -> (Proto.ok_response ~id:req.Proto.id (stats_json t), true, false)
      | Proto.Metrics ->
          (* The Prometheus exposition travels as one JSON string member;
             [socyield query --method metrics] unwraps it back to plain
             text for scrapers. *)
          ( Proto.ok_response ~id:req.Proto.id
              (Json.Obj
                 [
                   ( "content_type",
                     Json.String "text/plain; version=0.0.4" );
                   ("exposition", Json.String (Export.render_now ()));
                 ]),
            true,
            false )
      | Proto.Shutdown ->
          ( Proto.ok_response ~id:req.Proto.id
              (Json.Obj [ ("draining", Json.Bool true) ]),
            false,
            true )
      | Proto.Eval | Proto.Conditional_yields | Proto.Importance ->
          let reply = eval_reply t req ~t0 in
          (match List.assoc_opt req.Proto.meth latency_hists with
          | Some h -> Obs.observe h (Obs.now () -. t0)
          | None -> ());
          (reply, true, false))

let is_error_reply reply =
  match Json.member "status" reply with
  | Some (Json.String "error") -> true
  | _ -> false

let send oc reply =
  match
    output_string oc (Json.to_string reply);
    output_char oc '\n';
    flush oc
  with
  | () -> true
  | exception Sys_error _ -> false
  | exception Unix.Unix_error _ -> false

(* The server-assigned request id rides back in the reply envelope so a
   client can quote it when reading the daemon's logs or trace. It lives
   outside [result] — cache hits replay payloads bit-identically while
   every execution keeps its own identity. *)
let stamp_rid rid reply =
  match reply with
  | Json.Obj fields when not (List.mem_assoc "rid" fields) ->
      Json.Obj (fields @ [ ("rid", Json.Int rid) ])
  | reply -> reply

(* One request line: rid minting + ambient-context install, draining
   check, and active accounting around dispatch. Everything the request
   emits — log records, trace events, executor spans — happens under
   [Ctx.with_request rid], so it all carries this request's id. *)
let process t oc line =
  let t0 = Obs.now () in
  let rid = Atomic.fetch_and_add t.rids 1 + 1 in
  Ctx.with_request rid @@ fun () ->
  Mutex.lock t.lock;
  let draining = t.state <> Running in
  if not draining then t.active <- t.active + 1;
  Mutex.unlock t.lock;
  if draining then begin
    log_reject Proto.Shutting_down "server is shutting down" [];
    ignore
      (send oc
         (Proto.error_response ~id:Json.Null Proto.Shutting_down
            "server is shutting down"));
    false
  end
  else
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.lock;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.broadcast t.drained;
        Mutex.unlock t.lock)
      (fun () ->
        let reply, keep, shutdown_after = handle_line t ~t0 line in
        let reply = stamp_rid rid reply in
        if is_error_reply reply then begin
          Mutex.lock t.lock;
          t.error_count <- t.error_count + 1;
          Mutex.unlock t.lock;
          Obs.incr errors_counter
        end;
        let sent = send oc reply in
        if shutdown_after then stop t;
        keep && sent && not shutdown_after)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let close_conn t c =
  Mutex.lock t.lock;
  let do_close = not c.conn_closed in
  c.conn_closed <- true;
  t.conns <- List.filter (fun c' -> c' != c) t.conns;
  let remaining = List.length t.conns in
  Mutex.unlock t.lock;
  if do_close then (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Obs.set connections_gauge (float_of_int remaining);
  if do_close && Log.enabled_for Log.Debug then
    Log.debug "serve.close"
      ~fields:[ ("open", Json.Int remaining) ]
      "connection closed"

let handle_connection t c =
  let ic = Unix.in_channel_of_descr c.fd in
  let oc = Unix.out_channel_of_descr c.fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let line = String.trim line in
        if line = "" then loop () else if process t oc line then loop ()
  in
  (try loop ()
   with e ->
     Printf.eprintf "socyield serve: connection thread died: %s\n%!"
       (Printexc.to_string e));
  close_conn t c

(* ------------------------------------------------------------------ *)
(* Metrics snapshots                                                   *)
(* ------------------------------------------------------------------ *)

(* Periodic Prometheus-text snapshots for file-based scrapers (node
   exporter textfile collector and the like). Sleeps in short steps so a
   drain never waits a full interval for this thread; one final snapshot
   on the way out captures the end-of-life state. *)
let metrics_writer t path =
  let write () = try Export.write_file path with Sys_error _ -> () in
  let running () =
    Mutex.lock t.lock;
    let r = t.state = Running in
    Mutex.unlock t.lock;
    r
  in
  let rec wait remaining =
    if remaining <= 0.0 then true
    else if not (running ()) then false
    else begin
      Thread.delay (Float.min 0.2 remaining);
      wait (remaining -. 0.2)
    end
  in
  let rec loop () =
    if wait t.cfg.metrics_interval then begin
      write ();
      loop ()
    end
  in
  loop ();
  write ()

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)
(* ------------------------------------------------------------------ *)

let drain t =
  Mutex.lock t.lock;
  let active_at_drain = t.active in
  let open_at_drain = List.length t.conns in
  Mutex.unlock t.lock;
  if Log.enabled_for Log.Info then
    Log.info "serve.drain"
      ~fields:
        [
          ("active", Json.Int active_at_drain);
          ("open", Json.Int open_at_drain);
        ]
      "draining: listener closed, finishing in-flight requests";
  (* 0. The listener is done accepting. *)
  Mutex.lock t.lock;
  let close_listener = not t.listener_closed in
  t.listener_closed <- true;
  Mutex.unlock t.lock;
  if close_listener then
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* 1. Every in-flight request is answered. *)
  Mutex.lock t.lock;
  while t.active > 0 do
    Condition.wait t.drained t.lock
  done;
  Mutex.unlock t.lock;
  (* 2. Worker domains drain their (now empty) queue and join. *)
  Pool.Executor.shutdown t.executor;
  (* 3. Idle connections wake up (EOF) and their threads join. The fds
     are shut down, not closed — each connection thread still owns the
     single close of its fd. *)
  Mutex.lock t.lock;
  List.iter
    (fun c ->
      if not c.conn_closed then
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conns;
  let threads = t.threads in
  Mutex.unlock t.lock;
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  (* 4. The metrics writer notices the state change (≤ 0.2 s), takes its
     final snapshot and joins. *)
  (match t.metrics_thread with
  | Some th ->
      (try Thread.join th with _ -> ());
      t.metrics_thread <- None
  | None -> ());
  Mutex.lock t.lock;
  t.state <- Stopped;
  Mutex.unlock t.lock;
  if Log.enabled_for Log.Info then Log.info "serve.stopped" "server stopped";
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

let run t =
  (* A client vanishing mid-reply must surface as EPIPE on the write, not
     kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (match t.cfg.metrics_file with
  | Some path when t.metrics_thread = None ->
      t.metrics_thread <- Some (Thread.create (fun () -> metrics_writer t path) ())
  | _ -> ());
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Mutex.lock t.lock;
        let draining = t.state <> Running in
        Mutex.unlock t.lock;
        if draining then
          (* stop()'s wake-up connection, or a client that raced the
             shutdown: either way, accepting is over. *)
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          let c = { fd; conn_closed = false } in
          Obs.incr connections_counter;
          Mutex.lock t.lock;
          t.conns <- c :: t.conns;
          let n = List.length t.conns in
          Mutex.unlock t.lock;
          Obs.set connections_gauge (float_of_int n);
          if Log.enabled_for Log.Debug then
            Log.debug "serve.accept"
              ~fields:[ ("open", Json.Int n) ]
              "accepted connection";
          let th = Thread.create (fun () -> handle_connection t c) () in
          Mutex.lock t.lock;
          t.threads <- th :: t.threads;
          Mutex.unlock t.lock;
          accept_loop ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop ()
    | exception Unix.Unix_error _ ->
        (* Listener shut down or closed (EBADF/EINVAL) — stop accepting
           and fall through to the drain whether or not stop() did it. *)
        stop t
  in
  accept_loop ();
  drain t
