module Obs = Socy_obs.Obs

(* Process-wide probes; all server caches (there is normally one) share
   them. The per-instance stats below are what the stats endpoint uses. *)
let hits_counter = Obs.counter "serve.cache.hits"
let misses_counter = Obs.counter "serve.cache.misses"
let evictions_counter = Obs.counter "serve.cache.evictions"
let occupancy_gauge = Obs.gauge "serve.cache.occupancy"

(* Intrusive doubly-linked recency list: [mru] is the front, [lru] the
   back. A node is in the table iff it is linked. *)
type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (* toward MRU *)
  mutable next : 'a node option;  (* toward LRU *)
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  cap : int;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (min capacity 64);
    cap = capacity;
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          Obs.incr hits_counter;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          Obs.incr misses_counter;
          None)

let add t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
          unlink t old;
          Hashtbl.remove t.table key
      | None -> ());
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      if Hashtbl.length t.table > t.cap then begin
        match t.lru with
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            t.evictions <- t.evictions + 1;
            Obs.incr evictions_counter
        | None -> assert false
      end;
      Obs.set occupancy_gauge (float_of_int (Hashtbl.length t.table)))

let size t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.cap;
      })
