module Obs = Socy_obs.Obs
module Log = Socy_obs.Log
module Json = Socy_obs.Json

(* Observability probes are per instance: [create ~probes:"serve.cache"]
   registers [<probes>.hits/.misses/.evictions] counters and an
   [<probes>.occupancy] gauge owned by that instance, so two caches never
   cross-talk through a shared module global. Instances created without
   [?probes] (tests, scratch caches) touch no Obs state at all; their
   per-instance plain-integer stats below still count. *)
type probes = {
  p_name : string;
  p_hits : Obs.counter;
  p_misses : Obs.counter;
  p_evictions : Obs.counter;
  p_occupancy : Obs.gauge;
}

(* Intrusive doubly-linked recency list: [mru] is the front, [lru] the
   back. A node is in the table iff it is linked. *)
type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (* toward MRU *)
  mutable next : 'a node option;  (* toward LRU *)
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  cap : int;
  probes : probes option;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?probes ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  let probes =
    Option.map
      (fun name ->
        {
          p_name = name;
          p_hits = Obs.counter (name ^ ".hits");
          p_misses = Obs.counter (name ^ ".misses");
          p_evictions = Obs.counter (name ^ ".evictions");
          p_occupancy = Obs.gauge (name ^ ".occupancy");
        })
      probes
  in
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (min capacity 64);
    cap = capacity;
    probes;
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let probe t f = match t.probes with None -> () | Some p -> f p

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          probe t (fun p -> Obs.incr p.p_hits);
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          probe t (fun p -> Obs.incr p.p_misses);
          None)

let add t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
          unlink t old;
          Hashtbl.remove t.table key
      | None -> ());
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      if Hashtbl.length t.table > t.cap then begin
        match t.lru with
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            t.evictions <- t.evictions + 1;
            probe t (fun p ->
                Obs.incr p.p_evictions;
                if Log.enabled_for Log.Debug then
                  Log.debug "serve.cache.evict"
                    ~fields:
                      [
                        ("cache", Json.String p.p_name);
                        ("key", Json.String victim.key);
                        ("size", Json.Int (Hashtbl.length t.table));
                      ]
                    "evicted least-recently-used entry")
        | None -> assert false
      end;
      probe t (fun p ->
          Obs.set p.p_occupancy (float_of_int (Hashtbl.length t.table))))

let size t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.cap;
      })
