(** The [socyield serve] daemon: a long-running newline-delimited-JSON
    server over a Unix-domain socket, answering yield / conditional-yield /
    importance queries with a cross-request result cache.

    {2 Threading model}

    One accept loop (the thread that called {!run}) spawns one (sys)thread
    per client connection; connection threads parse requests, consult the
    {!Cache}, and schedule cache misses on a shared
    {!Socy_batch.Pool.Executor} — a persistent pool of worker {e domains},
    so concurrent clients evaluate in parallel while each pipeline run
    still owns its decision-diagram state exclusively (the batch-engine
    ownership model, one job at a time per domain).

    {2 Admission}

    A request is rejected with an [admission-rejected] error before any
    work happens when (a) its requested [node_limit]/[cpu_limit] exceeds
    the server's caps, or (b) the executor already has [max_inflight]
    submitted-but-unfinished runs. Requests that omit budgets get the
    server defaults; admitted budgets are enforced by the pipeline's typed
    failures, which come back as [budget-exhausted] errors.

    {2 Caching}

    Results are cached under {!Protocol.cache_key} — (circuit structure,
    defect model, ordering scheme, ε, effective budgets, method) — in a
    bounded LRU ({!Cache}). Deterministic outcomes are cached: successful
    payloads and [Node_budget] failures. [Cpu_budget] failures are {e not}
    cached (CPU metering is timing- and co-tenancy-dependent), so a
    transiently slow run does not poison the cache. A cache hit replays
    the stored payload bit-identically and marks the reply with
    [cache = hit].

    {2 Graceful shutdown}

    {!stop} (also triggered by the [shutdown] method and by
    SIGINT/SIGTERM under the CLI) moves the server to draining: the
    listening socket closes, new requests on existing connections are
    answered with [shutting-down], and {!run} returns only after every
    in-flight request has been answered and the executor's worker domains
    have drained and joined — no accepted job is ever dropped.

    {2 Observability}

    The server publishes [serve.requests] / [serve.requests.<method>] /
    [serve.errors] counters, [serve.latency.<method>] histograms
    (seconds), the [serve.inflight] and [serve.connections.open] gauges,
    and the cache's [serve.cache.*] instruments; completed requests land
    on the {!Socy_obs.Trace} timeline as [serve.request] instants, with
    the pipeline's own spans on the worker-domain rows. The [stats]
    endpoint returns all of it as one JSON document, and the [metrics]
    endpoint renders the same registry as a Prometheus text exposition
    ({!Socy_obs.Export}); [metrics_file]/[metrics_interval] additionally
    snapshot that exposition to a file on a timer (atomic
    write-then-rename, final snapshot at shutdown).

    {2 Request correlation}

    Every request line is assigned a monotonically increasing request id
    ([rid], starting at 1) and handled under
    {!Socy_obs.Ctx.with_request}, so every log record, trace event and
    metric instant it causes — including spans emitted on executor
    worker domains and parallel-team domains — carries that id. The rid
    is stamped into the reply envelope (outside [result], so cached
    payloads replay bit-identically), letting a client join its reply
    against the daemon's logs and Perfetto timeline. Structured log
    records ({!Socy_obs.Log}) cover the connection lifecycle
    (accept/close at debug), admissions and rejections, completed
    requests (info), and — when [slow_ms] is set — a [serve.slow]
    warning per over-threshold request carrying the cache-key digest,
    per-stage wall times, peak node counts and effective engine
    settings. *)

module Json = Socy_obs.Json

type config = {
  socket_path : string;  (** Unix-domain socket path to bind *)
  domains : int;  (** worker domains of the executor *)
  cache_capacity : int;  (** LRU entries *)
  max_inflight : int;  (** admission cap on submitted-but-unfinished runs *)
  default_node_limit : int;  (** node budget when the request omits one *)
  max_node_limit : int;  (** requests above this are rejected *)
  default_cpu_limit : float option;
      (** CPU budget when the request omits one; [None] = unlimited *)
  max_cpu_limit : float option;
      (** requests above this are rejected; [None] = no cap *)
  default_par_domains : int;
      (** intra-problem team size applied to requests that omit
          [par_domains]; [1] (default) = sequential engine. Parallel runs
          reuse the executor's worker domains via
          {!Socy_batch.Pool.Executor.parallel_tasks} — the daemon never
          spawns a second domain team (see docs/OPERATIONS.md). *)
  backlog : int;  (** listen(2) backlog *)
  unlink_existing : bool;
      (** remove a pre-existing socket file before binding (the CLI's
          [--force]); otherwise binding over one fails *)
  slow_ms : float option;
      (** requests slower than this (wall milliseconds) emit a
          [serve.slow] structured log record; [None] (default) disables
          the slow-query log *)
  metrics_file : string option;
      (** when set, a dedicated thread snapshots the Prometheus text
          exposition to this path every [metrics_interval] seconds *)
  metrics_interval : float;  (** snapshot period, seconds; default 10 *)
}

(** [config ~socket_path ()] with server-appropriate defaults: executor
    domains = [max 1 (recommended - 1)], cache 128 entries, max_inflight
    [4 × domains], node limits 40 million (default = cap, i.e. requests
    may only lower it), no CPU budget, backlog 64. The caps are
    authoritative: a [max_node_limit]/[max_cpu_limit] below the
    corresponding default also lowers that default, so a request that
    omits its budget is always admissible. *)
val config :
  ?domains:int ->
  ?cache_capacity:int ->
  ?max_inflight:int ->
  ?default_node_limit:int ->
  ?max_node_limit:int ->
  ?default_cpu_limit:float ->
  ?max_cpu_limit:float ->
  ?default_par_domains:int ->
  ?backlog:int ->
  ?unlink_existing:bool ->
  ?slow_ms:float ->
  ?metrics_file:string ->
  ?metrics_interval:float ->
  socket_path:string ->
  unit ->
  config

type t

(** [create config] binds and listens on the socket and spawns the worker
    domains. Raises [Failure] with a one-line message when the socket
    path is already in use (and [unlink_existing] is false) or cannot be
    bound. *)
val create : config -> t

(** [run t] is the accept loop; it blocks until {!stop} (or a [shutdown]
    request) initiates draining, then completes the drain — in-flight
    requests answered, executor joined, connection threads joined, socket
    file unlinked — and returns. Call it at most once. *)
val run : t -> unit

(** [stop t] initiates graceful shutdown from any thread (idempotent,
    non-blocking, async-signal-safe enough for a [Sys.Signal_handle]).
    {!run} performs the actual drain and returns when it is complete. *)
val stop : t -> unit

(** The [stats]-endpoint document (uptime, executor occupancy, per-method
    request counts, cache statistics, instrument snapshot) — exposed so
    the CLI can print a final summary after {!run} returns. *)
val stats_json : t -> Json.t
