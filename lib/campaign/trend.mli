(** Trend tracking across a history of benchmark snapshots.

    Where {!Gates} compares two documents, this module looks at a whole
    ordered history ([BENCH_*.json] per commit, or a campaign store) and
    flags {e slow creep}: a field that never regressed enough in one
    step to trip a step gate, but drifted up more than {!config.creep_factor}
    across the trailing {!config.window} snapshots with every step inside
    noise. Step regressions (big one-commit jumps) remain the step
    gates' job; creep detection deliberately refuses to fire on
    non-monotone series. *)

type snapshot = {
  snap_label : string;  (** e.g. the commit hash or run id *)
  bench : Socy_obs.Doc.Bench.t;
}

(** One field of one row traced through the history. *)
type series = {
  section : string;
  row : string;
  field : string;
  unit : Gates.unit_kind;
  points : (string * float) list;  (** (snapshot label, value), oldest first *)
}

type config = {
  window : int;  (** trailing snapshots considered (default 8) *)
  creep_factor : float;  (** cumulative ratio that fails (default 1.10) *)
  dip_tolerance : float;
      (** per-step decrease still considered "monotone-ish" (default 0.05) *)
  noise_floor_s : float;
      (** seconds series starting below this are skipped (default 0.05) *)
  min_points : int;  (** minimum window points to judge (default 3) *)
}

val default_config : config

type finding =
  | Creep of { series : series; first : float; last : float; ratio : float }
  | Missing_row of { section : string; row : string; last_seen : string }
      (** row present in the previous snapshot, absent from the newest *)

val series_of : ?gates:Gates.gate list -> snapshot list -> series list
(** Extract the trend series: one per (section, row, field) where the
    field is step-gated by a {!Gates.Max_ratio} gate — the shared gate
    table decides what is trended, exactly as it decides what is
    step-checked. *)

val slope : series -> float
(** Least-squares slope of the values over the snapshot index. *)

val detect : ?config:config -> ?gates:Gates.gate list -> snapshot list -> finding list
(** All creep findings over the history (oldest snapshot first) plus
    missing-row findings for the newest snapshot. *)

val describe : finding -> string
