(** The on-disk campaign artifact store.

    A store is a plain directory; each run is a subdirectory named
    [<name>-<UTC second stamp>Z] (with [".2"], [".3"]… suffixes on
    same-second collisions) holding a [campaign.json] document plus
    optional [metrics.json] and [trace.json]. Run ids sort
    chronologically as strings, so a directory listing {e is} the run
    history — no index file to corrupt. Foreign files in the store root
    are ignored.

    Probes: [campaign.store.writes] counts files written,
    [campaign.store.runs_listed] counts runs returned by listings,
    [campaign.store.deletes] counts runs removed by {!delete_run}. *)

type entry = { id : string; dir : string }

val campaign_basename : string
(** ["campaign.json"] *)

val run_id : name:string -> now:float -> string
(** The id a run started at Unix time [now] would get (before
    collision suffixes). *)

val create_run : root:string -> name:string -> ?now:float -> unit -> entry
(** Create (mkdir -p) a fresh run directory under [root]. [now]
    defaults to the current time. *)

val campaign_file : entry -> string
(** Path of the run's [campaign.json]. *)

val write_run :
  entry -> ?metrics:Socy_obs.Json.t -> ?trace:Socy_obs.Json.t -> Socy_obs.Json.t -> unit
(** [write_run e doc] writes [doc] as the run's [campaign.json], plus
    [metrics.json] / [trace.json] when given. *)

val list_runs : root:string -> entry list
(** Every run in the store, oldest first. A missing or unreadable root
    is an empty store, not an error. *)

val find_run : root:string -> id:string -> entry option

val run_timestamp : string -> float option
(** The Unix time encoded in a run id's UTC stamp (collision suffixes
    stripped); [None] when the id does not end in a well-formed stamp. *)

val delete_run : entry -> (unit, string) result
(** Remove the run's directory: every regular file inside, then the
    directory itself. Never recursive — a run directory is flat. *)

val load_json : entry -> (Socy_obs.Json.t, string) result
(** Read and parse the run's [campaign.json]. *)
