module Json = Socy_obs.Json
module Obs = Socy_obs.Obs
module Bench = Socy_obs.Doc.Bench
module P = Socy_batch.Pipeline
module Scheme = Socy_order.Scheme
module S = Socy_benchmarks.Suite
module D = Socy_defects.Distribution
module Model = Socy_defects.Model
module Text_table = Socy_util.Text_table

let schema = "socyield-campaign/1"

let runs_counter = Obs.counter "campaign.runs"
let rows_ok_counter = Obs.counter "campaign.rows_ok"
let rows_failed_counter = Obs.counter "campaign.rows_failed"
let wall_gauge = Obs.gauge "campaign.wall_s"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type grid = {
  name : string;
  benchmarks : string list;
  lambdas : float list;
  epsilons : float list;
  mv_orders : Scheme.mv_order list;
  bit_order : Scheme.bit_order;
  alpha : float;
  node_limit : int;
  cpu_limit : float option;
  reorder : bool;
  par_domains : int;
}

type point = {
  source : string;
  lambda : float;
  epsilon : float;
  mv : Scheme.mv_order;
}

type failure_kind =
  | Node_budget_hit of int  (** live-node peak at failure *)
  | Cpu_budget_hit of float  (** elapsed CPU seconds at cut-off *)
  | Cancelled

type success = {
  m : int;
  yield_lower : float;
  yield_upper : float;
  robdd_peak : int;
  robdd_size : int;
  romdd_size : int;
  cpu_s : float;
}

type row = { point : point; result : (success, failure_kind) result }

type t = {
  grid : grid;
  created_s : float;
  domains : int;
  wall_s : float;
  rows : row list;
}

let point_label p =
  Printf.sprintf "%s l=%g e=%g %s" p.source p.lambda p.epsilon
    (Scheme.mv_order_name p.mv)

let status_name = function
  | Ok _ -> "ok"
  | Error (Node_budget_hit _) -> "node-budget"
  | Error (Cpu_budget_hit _) -> "cpu-budget"
  | Error Cancelled -> "cancelled"

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let points grid =
  List.concat_map
    (fun source ->
      List.concat_map
        (fun lambda ->
          List.concat_map
            (fun epsilon ->
              List.map
                (fun mv -> { source; lambda; epsilon; mv })
                grid.mv_orders)
            grid.epsilons)
        grid.lambdas)
    grid.benchmarks

let validate grid =
  if grid.name = "" then Error "campaign name must not be empty"
  else if
    String.exists (fun c -> c = '/' || c = '\\' || c = '\000') grid.name
  then Error (Printf.sprintf "campaign name %S must not contain '/'" grid.name)
  else if grid.benchmarks = [] then Error "empty benchmark axis"
  else if grid.lambdas = [] || grid.epsilons = [] || grid.mv_orders = [] then
    Error "empty sweep axis"
  else
    let rec check = function
      | [] -> Ok ()
      | b :: rest -> (
          match S.by_name b with
          | _ -> check rest
          | exception Not_found ->
              Error (Printf.sprintf "unknown benchmark %S" b))
    in
    check grid.benchmarks

let failure_of_pipeline = function
  | P.Node_budget { peak; _ } -> Node_budget_hit peak
  | P.Cpu_budget { elapsed; _ } -> Cpu_budget_hit elapsed
  | P.Batch_cancelled -> Cancelled

let run ?domains ?wall_budget ?progress ?(now = Unix.gettimeofday ()) grid =
  match validate grid with
  | Error _ as e -> e
  | Ok () ->
      let pts = points grid in
      let jobs =
        List.map
          (fun p ->
            let instance = S.by_name p.source in
            let model =
              Model.create
                (D.negative_binomial ~mean:p.lambda ~alpha:grid.alpha)
                instance.S.affect
            in
            let config =
              P.Config.make ~epsilon:p.epsilon ~node_limit:grid.node_limit
                ?cpu_limit:grid.cpu_limit ~mv_order:p.mv
                ~bit_order:grid.bit_order ~reorder:grid.reorder
                ~par_domains:grid.par_domains ()
            in
            P.job ~config ~label:(point_label p) instance.S.circuit
              (Model.to_lethal model))
          pts
      in
      let domains =
        match domains with
        | Some d -> d
        | None -> Socy_batch.Pool.default_domains ()
      in
      let t0 = Unix.gettimeofday () in
      let results = P.run_batch ~domains ?wall_budget ?progress jobs in
      let wall_s = Unix.gettimeofday () -. t0 in
      let rows =
        List.map2
          (fun point result ->
            match result with
            | Ok (r : P.report) ->
                Obs.incr rows_ok_counter;
                {
                  point;
                  result =
                    Ok
                      {
                        m = r.P.m;
                        yield_lower = r.P.yield_lower;
                        yield_upper = r.P.yield_upper;
                        robdd_peak = r.P.robdd_peak;
                        robdd_size = r.P.robdd_size;
                        romdd_size = r.P.romdd_size;
                        cpu_s = r.P.cpu_seconds;
                      };
                }
            | Error f ->
                Obs.incr rows_failed_counter;
                { point; result = Error (failure_of_pipeline f) })
          pts results
      in
      Obs.incr runs_counter;
      Obs.set wall_gauge wall_s;
      Ok { grid; created_s = now; domains; wall_s; rows }

(* ------------------------------------------------------------------ *)
(* Codec: socyield-campaign/1                                          *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let grid_to_json g =
  Json.Obj
    [
      ("benchmarks", Json.List (List.map (fun b -> Json.String b) g.benchmarks));
      ("lambdas", Json.List (List.map (fun l -> Json.Float l) g.lambdas));
      ("epsilons", Json.List (List.map (fun e -> Json.Float e) g.epsilons));
      ( "mv_orders",
        Json.List
          (List.map
             (fun mv -> Json.String (Scheme.mv_order_name mv))
             g.mv_orders) );
      ("bit_order", Json.String (Scheme.bit_order_name g.bit_order));
      ("alpha", Json.Float g.alpha);
      ("node_limit", Json.Int g.node_limit);
      ( "cpu_limit",
        match g.cpu_limit with None -> Json.Null | Some s -> Json.Float s );
      ("reorder", Json.Bool g.reorder);
      ("par_domains", Json.Int g.par_domains);
    ]

(* The deterministic result fields a row exposes to the gate table: the
   same names the bench records and the sweep JSON use, so one gate spec
   reads all three document kinds. *)
let row_fields row =
  match row.result with
  | Ok s ->
      [
        ("m", Json.Int s.m);
        ("yield_lower", Json.Float s.yield_lower);
        ("yield_upper", Json.Float s.yield_upper);
        ("robdd_peak", Json.Int s.robdd_peak);
        ("robdd_size", Json.Int s.robdd_size);
        ("romdd_size", Json.Int s.romdd_size);
        ("cpu_s", Json.Float s.cpu_s);
      ]
  | Error (Node_budget_hit peak) -> [ ("peak_at_failure", Json.Int peak) ]
  | Error (Cpu_budget_hit elapsed) -> [ ("elapsed_s", Json.Float elapsed) ]
  | Error Cancelled -> []

let row_to_json row =
  Json.Obj
    ([
       ("source", Json.String row.point.source);
       ("lambda", Json.Float row.point.lambda);
       ("epsilon", Json.Float row.point.epsilon);
       ("mv_order", Json.String (Scheme.mv_order_name row.point.mv));
       ("status", Json.String (status_name row.result));
     ]
    @ row_fields row)

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("name", Json.String t.grid.name);
      ("created_s", Json.Float t.created_s);
      ("domains", Json.Int t.domains);
      ("wall_s", Json.Float t.wall_s);
      ("grid", grid_to_json t.grid);
      ("rows", Json.List (List.map row_to_json t.rows));
    ]

let field what name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "%s is not a string" what)

let as_float what v =
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s is not a number" what)

let as_int what = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "%s is not an integer" what)

let as_bool what = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s is not a bool" what)

let as_list what = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "%s is not a list" what)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let mv_of_json what v =
  let* s = as_string what v in
  match Scheme.mv_order_of_name s with
  | Some mv -> Ok mv
  | None -> Error (Printf.sprintf "%s: unknown mv ordering %S" what s)

let grid_of_json ~name json =
  let* benchmarks = field "grid" "benchmarks" json in
  let* benchmarks = as_list "grid.benchmarks" benchmarks in
  let* benchmarks = map_result (as_string "grid.benchmarks[]") benchmarks in
  let* lambdas = field "grid" "lambdas" json in
  let* lambdas = as_list "grid.lambdas" lambdas in
  let* lambdas = map_result (as_float "grid.lambdas[]") lambdas in
  let* epsilons = field "grid" "epsilons" json in
  let* epsilons = as_list "grid.epsilons" epsilons in
  let* epsilons = map_result (as_float "grid.epsilons[]") epsilons in
  let* mv_orders = field "grid" "mv_orders" json in
  let* mv_orders = as_list "grid.mv_orders" mv_orders in
  let* mv_orders = map_result (mv_of_json "grid.mv_orders[]") mv_orders in
  let* bit_order = field "grid" "bit_order" json in
  let* bit_order = as_string "grid.bit_order" bit_order in
  let* bit_order =
    match Scheme.bit_order_of_name bit_order with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "grid: unknown bit ordering %S" bit_order)
  in
  let* alpha = field "grid" "alpha" json in
  let* alpha = as_float "grid.alpha" alpha in
  let* node_limit = field "grid" "node_limit" json in
  let* node_limit = as_int "grid.node_limit" node_limit in
  let* cpu_limit =
    match Json.member "cpu_limit" json with
    | None | Some Json.Null -> Ok None
    | Some v ->
        let* f = as_float "grid.cpu_limit" v in
        Ok (Some f)
  in
  let* reorder = field "grid" "reorder" json in
  let* reorder = as_bool "grid.reorder" reorder in
  let* par_domains = field "grid" "par_domains" json in
  let* par_domains = as_int "grid.par_domains" par_domains in
  Ok
    {
      name;
      benchmarks;
      lambdas;
      epsilons;
      mv_orders;
      bit_order;
      alpha;
      node_limit;
      cpu_limit;
      reorder;
      par_domains;
    }

let row_of_json i json =
  let what = Printf.sprintf "rows[%d]" i in
  let* source = field what "source" json in
  let* source = as_string (what ^ ".source") source in
  let* lambda = field what "lambda" json in
  let* lambda = as_float (what ^ ".lambda") lambda in
  let* epsilon = field what "epsilon" json in
  let* epsilon = as_float (what ^ ".epsilon") epsilon in
  let* mv = field what "mv_order" json in
  let* mv = mv_of_json (what ^ ".mv_order") mv in
  let* status = field what "status" json in
  let* status = as_string (what ^ ".status") status in
  let point = { source; lambda; epsilon; mv } in
  let* result =
    match status with
    | "ok" ->
        let num name =
          let* v = field what name json in
          as_float (what ^ "." ^ name) v
        in
        let int name =
          let* v = field what name json in
          as_int (what ^ "." ^ name) v
        in
        let* m = int "m" in
        let* yield_lower = num "yield_lower" in
        let* yield_upper = num "yield_upper" in
        let* robdd_peak = int "robdd_peak" in
        let* robdd_size = int "robdd_size" in
        let* romdd_size = int "romdd_size" in
        let* cpu_s = num "cpu_s" in
        Ok
          (Ok
             {
               m;
               yield_lower;
               yield_upper;
               robdd_peak;
               robdd_size;
               romdd_size;
               cpu_s;
             })
    | "node-budget" ->
        let* peak = field what "peak_at_failure" json in
        let* peak = as_int (what ^ ".peak_at_failure") peak in
        Ok (Error (Node_budget_hit peak))
    | "cpu-budget" ->
        let* elapsed = field what "elapsed_s" json in
        let* elapsed = as_float (what ^ ".elapsed_s") elapsed in
        Ok (Error (Cpu_budget_hit elapsed))
    | "cancelled" -> Ok (Error Cancelled)
    | other -> Error (Printf.sprintf "%s: unknown status %S" what other)
  in
  Ok { point; result }

let of_json json =
  let* () =
    match Json.member "schema" json with
    | Some (Json.String s) when s = schema -> Ok ()
    | Some (Json.String s) ->
        Error
          (Printf.sprintf "schema is %S, expected %S — not a campaign \
                           document?" s schema)
    | _ ->
        Error
          (Printf.sprintf "no %S schema field — not a campaign document?"
             schema)
  in
  let* name = field "campaign" "name" json in
  let* name = as_string "name" name in
  let* created_s = field "campaign" "created_s" json in
  let* created_s = as_float "created_s" created_s in
  let* domains = field "campaign" "domains" json in
  let* domains = as_int "domains" domains in
  let* wall_s = field "campaign" "wall_s" json in
  let* wall_s = as_float "wall_s" wall_s in
  let* grid_json = field "campaign" "grid" json in
  let* grid = grid_of_json ~name grid_json in
  let* rows = field "campaign" "rows" json in
  let* rows = as_list "rows" rows in
  let* rows =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest ->
          let* row = row_of_json i r in
          go (i + 1) (row :: acc) rest
    in
    go 0 [] rows
  in
  Ok { grid; created_s; domains; wall_s; rows }

let of_string s =
  match Json.of_string s with
  | json -> of_json json
  | exception Json.Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Store round trips                                                   *)
(* ------------------------------------------------------------------ *)

let save ~root ?metrics ?trace t =
  let e = Store.create_run ~root ~name:t.grid.name ~now:t.created_s () in
  Store.write_run e ?metrics ?trace (to_json t);
  e

let load (e : Store.entry) =
  let* json = Store.load_json e in
  match of_json json with
  | Ok t -> Ok t
  | Error msg -> Error (Printf.sprintf "%s: %s" (Store.campaign_file e) msg)

let load_all ~root =
  map_result
    (fun (e : Store.entry) ->
      let* t = load e in
      Ok (e.Store.id, t))
    (Store.list_runs ~root)

(* ------------------------------------------------------------------ *)
(* Bench view: a campaign as a socyield-bench document                 *)
(* ------------------------------------------------------------------ *)

(* Reducing a campaign to the bench shape is what lets one gate table
   and one trend tracker serve both artifact kinds: section is the
   campaign name, row is the grid point. *)
let to_bench t =
  {
    Bench.mode = "campaign";
    total_wall_s = t.wall_s;
    records =
      List.map
        (fun row ->
          {
            Bench.section = t.grid.name;
            row = point_label row.point;
            fields =
              ("status", Json.String (status_name row.result))
              :: row_fields row;
          })
        t.rows;
  }

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)
(* ------------------------------------------------------------------ *)

type status_change = {
  sc_point : point;
  sc_old : string;
  sc_new : string;
}

type diff = {
  d_old : string;  (** display label of the older run *)
  d_new : string;
  outcomes : Gates.outcome list;  (** shared-point gate results *)
  status_changes : status_change list;  (** ok -> failed is a regression *)
}

let diff ?(gates = Gates.default_gates) ~old_label ~new_label old_t new_t =
  let find_row t point =
    List.find_opt (fun r -> r.point = point) t.rows
  in
  let outcomes = ref [] and status_changes = ref [] in
  List.iter
    (fun old_row ->
      let label = point_label old_row.point in
      match find_row new_t old_row.point with
      | None ->
          outcomes :=
            {
              Gates.gate = Gates.row_gate;
              label;
              field = "";
              check = Gates.Row_missing;
              failed = true;
            }
            :: !outcomes
      | Some new_row -> (
          match (old_row.result, new_row.result) with
          | Ok _, Ok _ ->
              outcomes :=
                List.rev
                  (Gates.check_pair ~gates ~label
                     ~base:(row_fields old_row)
                     ~fresh:(row_fields new_row))
                @ !outcomes
          | old_r, new_r when status_name old_r <> status_name new_r ->
              status_changes :=
                {
                  sc_point = old_row.point;
                  sc_old = status_name old_r;
                  sc_new = status_name new_r;
                }
                :: !status_changes
          | _ -> ()))
    old_t.rows;
  List.iter
    (fun new_row ->
      if find_row old_t new_row.point = None then
        outcomes :=
          {
            Gates.gate = Gates.row_gate;
            label = point_label new_row.point;
            field = "";
            check = Gates.Row_new;
            failed = false;
          }
          :: !outcomes)
    new_t.rows;
  {
    d_old = old_label;
    d_new = new_label;
    outcomes = List.rev !outcomes;
    status_changes = List.rev !status_changes;
  }

(* ok -> failed status flips are regressions; failed -> ok are
   improvements and never fail the diff. *)
let status_change_failed sc = sc.sc_old = "ok" && sc.sc_new <> "ok"

let diff_failed d =
  List.exists (fun o -> o.Gates.failed) d.outcomes
  || List.exists status_change_failed d.status_changes

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let format_utc s =
  let tm = Unix.gmtime s in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let ok_failed t =
  List.fold_left
    (fun (ok, failed) r ->
      match r.result with Ok _ -> (ok + 1, failed) | Error _ -> (ok, failed + 1))
    (0, 0) t.rows

(* The aggregate view: one line per run (newest last), then one line per
   grid point with the latest result and the cpu_s trajectory across
   runs, then the trend findings. *)
let runs_table runs =
  let t =
    Text_table.create
      ~aligns:[ Left; Left; Right; Right; Right; Right ]
      [ "run"; "created (UTC)"; "rows"; "ok"; "failed"; "wall (s)" ]
  in
  List.iter
    (fun (id, c) ->
      let ok, failed = ok_failed c in
      Text_table.add_row t
        [
          id;
          format_utc c.created_s;
          string_of_int (List.length c.rows);
          string_of_int ok;
          string_of_int failed;
          Printf.sprintf "%.2f" c.wall_s;
        ])
    runs;
  Text_table.render t

let points_table runs =
  match List.rev runs with
  | [] -> ""
  | (_, latest) :: _ ->
      let t =
        Text_table.create
          ~aligns:[ Left; Left; Right; Right; Left ]
          [ "point"; "status"; "yield_lower"; "cpu (s)"; "cpu_s across runs" ]
      in
      List.iter
        (fun row ->
          let label = point_label row.point in
          let trajectory =
            String.concat " -> "
              (List.filter_map
                 (fun (_, c) ->
                   match
                     List.find_opt (fun r -> r.point = row.point) c.rows
                   with
                   | Some { result = Ok s; _ } ->
                       Some (Printf.sprintf "%.2f" s.cpu_s)
                   | Some { result = Error _; _ } -> Some "x"
                   | None -> None)
                 runs)
          in
          let yield, cpu =
            match row.result with
            | Ok s ->
                (Printf.sprintf "%.6f" s.yield_lower,
                 Printf.sprintf "%.2f" s.cpu_s)
            | Error _ -> ("-", "-")
          in
          Text_table.add_row t
            [ label; status_name row.result; yield; cpu; trajectory ])
        latest.rows;
      Text_table.render t

let trend_findings runs =
  Trend.detect
    (List.map
       (fun (id, c) -> { Trend.snap_label = id; bench = to_bench c })
       runs)

let render_text ~runs ~findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (runs_table runs);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (points_table runs);
  (match findings with
  | [] -> Buffer.add_string buf "\ntrend: no slow creep detected\n"
  | fs ->
      Buffer.add_string buf "\ntrend findings:\n";
      List.iter
        (fun f -> Buffer.add_string buf ("  CREEP " ^ Trend.describe f ^ "\n"))
        fs);
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html ~runs ~findings =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  pf "<title>socyield campaign report</title>\n";
  pf
    "<style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse;margin:1em \
     0}th,td{border:1px solid #999;padding:0.3em 0.6em;text-align:left}th{background:#eee}\
     td.num{text-align:right}.fail{color:#b00020;font-weight:bold}.ok{color:#206020}\
     </style></head><body>\n";
  pf "<h1>socyield campaign report</h1>\n";
  pf "<h2>Runs</h2>\n<table><tr><th>run</th><th>created (UTC)</th><th>rows</th>\
      <th>ok</th><th>failed</th><th>wall (s)</th></tr>\n";
  List.iter
    (fun (id, c) ->
      let ok, failed = ok_failed c in
      pf
        "<tr><td>%s</td><td>%s</td><td class=num>%d</td><td class=num>%d</td>\
         <td class=num>%d</td><td class=num>%.2f</td></tr>\n"
        (html_escape id)
        (format_utc c.created_s)
        (List.length c.rows) ok failed c.wall_s)
    runs;
  pf "</table>\n";
  (match List.rev runs with
  | [] -> ()
  | (latest_id, latest) :: _ ->
      pf "<h2>Grid points (latest run: %s)</h2>\n" (html_escape latest_id);
      pf "<table><tr><th>point</th><th>status</th><th>yield_lower</th>\
          <th>cpu (s)</th><th>cpu_s across runs</th></tr>\n";
      List.iter
        (fun row ->
          let trajectory =
            String.concat " &rarr; "
              (List.filter_map
                 (fun (_, c) ->
                   match
                     List.find_opt (fun r -> r.point = row.point) c.rows
                   with
                   | Some { result = Ok s; _ } ->
                       Some (Printf.sprintf "%.2f" s.cpu_s)
                   | Some { result = Error _; _ } -> Some "&#10007;"
                   | None -> None)
                 runs)
          in
          let yield, cpu, cls =
            match row.result with
            | Ok s ->
                ( Printf.sprintf "%.6f" s.yield_lower,
                  Printf.sprintf "%.2f" s.cpu_s,
                  "ok" )
            | Error _ -> ("-", "-", "fail")
          in
          pf
            "<tr><td>%s</td><td class=%s>%s</td><td class=num>%s</td>\
             <td class=num>%s</td><td>%s</td></tr>\n"
            (html_escape (point_label row.point))
            cls
            (status_name row.result)
            yield cpu trajectory)
        latest.rows;
      pf "</table>\n");
  pf "<h2>Trend</h2>\n";
  (match findings with
  | [] -> pf "<p class=ok>No slow creep detected.</p>\n"
  | fs ->
      pf "<ul>\n";
      List.iter
        (fun f -> pf "<li class=fail>%s</li>\n" (html_escape (Trend.describe f)))
        fs;
      pf "</ul>\n");
  pf "</body></html>\n";
  Buffer.contents buf
