(** Campaigns: named evaluation grids with stored, diffable results.

    A campaign is ROADMAP item 5's answer to "run the same grid every
    week and tell me what moved": a {!grid} names a cartesian product of
    benchmarks × λ × ε × orderings evaluated through
    {!Socy_batch.Pipeline.run_batch}, {!run} executes it (budget
    failures land as typed rows, not exceptions), {!save}/{!load} round
    it through the {!Store} as a versioned [socyield-campaign/1]
    document, {!diff} compares any two runs through the shared
    {!Gates} table, and {!render_text}/{!render_html} aggregate a whole
    store into a trend report via {!Trend}.

    Probes: [campaign.runs], [campaign.rows_ok], [campaign.rows_failed]
    (counters), [campaign.wall_s] (gauge). *)

val schema : string
(** ["socyield-campaign/1"] *)

type grid = {
  name : string;  (** store-directory prefix; no '/' allowed *)
  benchmarks : string list;  (** {!Socy_benchmarks.Suite.by_name} names *)
  lambdas : float list;
  epsilons : float list;
  mv_orders : Socy_order.Scheme.mv_order list;
  bit_order : Socy_order.Scheme.bit_order;
  alpha : float;
  node_limit : int;
  cpu_limit : float option;
  reorder : bool;
  par_domains : int;
}

type point = {
  source : string;
  lambda : float;
  epsilon : float;
  mv : Socy_order.Scheme.mv_order;
}

type failure_kind =
  | Node_budget_hit of int  (** live-node peak at failure *)
  | Cpu_budget_hit of float  (** elapsed CPU seconds at cut-off *)
  | Cancelled  (** batch wall budget expired before the job started *)

type success = {
  m : int;
  yield_lower : float;
  yield_upper : float;
  robdd_peak : int;
  robdd_size : int;
  romdd_size : int;
  cpu_s : float;
}

type row = { point : point; result : (success, failure_kind) result }

type t = {
  grid : grid;
  created_s : float;  (** Unix time the run started *)
  domains : int;
  wall_s : float;
  rows : row list;  (** grid order: benchmarks × λ × ε × mv *)
}

val point_label : point -> string
(** ["MS4 l=10 e=0.001 wvr"] — the row key used in documents, diffs and
    reports. *)

val status_name : (success, failure_kind) result -> string
(** ["ok"], ["node-budget"], ["cpu-budget"] or ["cancelled"]. *)

val points : grid -> point list

val validate : grid -> (unit, string) result
(** Reject empty axes, unknown benchmark names and names unusable as
    directory prefixes. *)

val run :
  ?domains:int ->
  ?wall_budget:float ->
  ?progress:(completed:int -> total:int -> label:string -> unit) ->
  ?now:float ->
  grid ->
  (t, string) result
(** Evaluate the grid. [domains] defaults to
    {!Socy_batch.Pool.default_domains}; [progress] is forwarded to
    {!Socy_batch.Pipeline.run_batch} (called on worker domains). Only
    grid validation fails; per-point budget exhaustion becomes a failed
    {!row}. *)

(** {1 Codec} *)

val to_json : t -> Socy_obs.Json.t
val of_json : Socy_obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result

(** {1 Store round trips} *)

val save :
  root:string ->
  ?metrics:Socy_obs.Json.t ->
  ?trace:Socy_obs.Json.t ->
  t ->
  Store.entry
(** Write the campaign (plus optional metrics/trace documents) as a new
    run in the store; the run id stamps [t.created_s]. *)

val load : Store.entry -> (t, string) result

val load_all : root:string -> ((string * t) list, string) result
(** Every run in the store as [(run id, campaign)], oldest first. *)

(** {1 Bench view} *)

val row_fields : row -> Gates.fields
(** The row's numeric result fields under their bench names
    ([yield_lower], [cpu_s], [robdd_peak], ...), so the shared gate
    table applies unchanged. *)

val to_bench : t -> Socy_obs.Doc.Bench.t
(** The campaign as a [socyield-bench/1]-shaped document
    (section = campaign name, row = {!point_label}) — what lets
    {!Trend} and {!Gates.check_docs} consume campaign stores. *)

(** {1 Diffing} *)

type status_change = { sc_point : point; sc_old : string; sc_new : string }

type diff = {
  d_old : string;
  d_new : string;
  outcomes : Gates.outcome list;
  status_changes : status_change list;
}

val diff :
  ?gates:Gates.gate list ->
  old_label:string ->
  new_label:string ->
  t ->
  t ->
  diff
(** Compare two runs point by point: shared ok/ok points go through
    {!Gates.check_pair}; points whose status changed are collected
    separately; points present in only one run surface as
    {!Gates.Row_missing} / {!Gates.Row_new}. *)

val status_change_failed : status_change -> bool
(** An [ok -> failed] flip is a regression; [failed -> ok] is an
    improvement and never fails. *)

val diff_failed : diff -> bool

(** {1 Reports} *)

val trend_findings : (string * t) list -> Trend.finding list
(** Creep/missing-row findings over a store history (oldest first). *)

val render_text : runs:(string * t) list -> findings:Trend.finding list -> string
val render_html : runs:(string * t) list -> findings:Trend.finding list -> string
