module Json = Socy_obs.Json

type fields = (string * Json.t) list

let number field (fields : fields) =
  Option.bind (List.assoc_opt field fields) Json.to_float

type unit_kind = Seconds | Nodes | Plain

type target =
  | Field of string
  | Fields of string list
  | Seconds_suffix of { exempt_prefixes : string list }

type rule =
  | Max_abs_drift of float
  | Max_ratio of { factor : float; noise_floor : float }
  | Fresh_max of float
  | Fresh_floor_when of {
      enable_field : string;
      enable_at_least : float;
      floor : float;
    }

type gate = {
  g_name : string;
  unit : unit_kind;
  announce_pass : bool;
  target : target;
  rule : rule;
}

type check =
  | Drifted of { base : float; fresh : float; drift : float; tolerance : float }
  | Regressed of { base : float; fresh : float; factor : float }
  | Step_ok of { base : float; fresh : float }
  | Missing_fresh
  | Fresh_exceeds of { value : float; bound : float }
  | Fresh_below_floor of { value : float; floor : float; enable : float }
  | Fresh_missing_required of { enable : float }
  | Fresh_floor_ok of { value : float; enable : float }
  | Row_missing
  | Row_new

type outcome = {
  gate : gate;
  label : string;
  field : string;
  check : check;
  failed : bool;
}

(* ------------------------------------------------------------------ *)
(* The default table: exactly the historical bench/compare.ml policy.  *)
(* ------------------------------------------------------------------ *)

let yield_tolerance = 1e-12

let row_gate =
  (* Synthetic gate for doc-level row presence; never matched by target. *)
  {
    g_name = "row-presence";
    unit = Plain;
    announce_pass = false;
    target = Fields [];
    rule = Max_abs_drift 0.0;
  }

let default_gates =
  [
    (* yield_lower drifting beyond 1e-12 from the baseline is a
       correctness failure: the paper's Table-4 numbers are the
       contract. *)
    {
      g_name = "yield-drift";
      unit = Plain;
      announce_pass = false;
      target = Field "yield_lower";
      rule = Max_abs_drift yield_tolerance;
    };
    (* every seconds-valued field regressing >25% on a >=50ms baseline
       row is a performance failure; wall clock is co-tenancy noise and
       trace_*/gc_* describe the observability layer, so they are
       exempt. *)
    {
      g_name = "seconds-step";
      unit = Seconds;
      announce_pass = true;
      target = Seconds_suffix { exempt_prefixes = [ "wall_"; "trace_"; "gc_" ] };
      rule = Max_ratio { factor = 1.25; noise_floor = 0.05 };
    };
    (* node-count peaks are deterministic, so >10% growth means the
       ordering or sifting logic regressed — no noise floor. *)
    {
      g_name = "peak-step";
      unit = Nodes;
      announce_pass = true;
      target = Fields [ "robdd_peak"; "peak_nodes" ];
      rule = Max_ratio { factor = 1.10; noise_floor = neg_infinity };
    };
    (* parallel runs must be bit-identical to sequential — checked on
       the fresh file alone, no baseline needed. *)
    {
      g_name = "seq-equivalence";
      unit = Plain;
      announce_pass = false;
      target =
        Fields [ "seq_yield_drift"; "seq_yield_drift_max"; "par_yield_drift" ];
      rule = Fresh_max yield_tolerance;
    };
    (* a >=4-domain team must pay for itself; smaller hosts never emit
       the record, so the gate self-disables there. *)
    {
      g_name = "par-speedup";
      unit = Plain;
      announce_pass = true;
      target = Field "par_speedup";
      rule =
        Fresh_floor_when
          { enable_field = "par_domains"; enable_at_least = 4.0; floor = 1.5 };
    };
  ]

(* ------------------------------------------------------------------ *)
(* Target matching                                                     *)
(* ------------------------------------------------------------------ *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  String.length s > String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

let target_matches target field =
  match target with
  | Field f -> f = field
  | Fields fs -> List.mem field fs
  | Seconds_suffix { exempt_prefixes } ->
      has_suffix "_s" field
      && not (List.exists (fun p -> has_prefix p field) exempt_prefixes)

(* The fields of [fields] a gate applies to, in field order. *)
let matched_fields gate (fields : fields) =
  List.filter_map
    (fun (k, _) -> if target_matches gate.target k then Some k else None)
    fields

let step_gated_fields ~gates (fields : fields) =
  List.concat_map
    (fun g ->
      match g.rule with
      | Max_ratio _ -> List.map (fun f -> (f, g)) (matched_fields g fields)
      | Max_abs_drift _ | Fresh_max _ | Fresh_floor_when _ -> [])
    gates

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let check_pair ~gates ~label ~(base : fields) ~(fresh : fields) =
  List.concat_map
    (fun gate ->
      match gate.rule with
      | Max_abs_drift tolerance ->
          List.filter_map
            (fun field ->
              match (number field base, number field fresh) with
              | Some b, Some f ->
                  let drift = abs_float (b -. f) in
                  if drift > tolerance then
                    Some
                      {
                        gate;
                        label;
                        field;
                        check = Drifted { base = b; fresh = f; drift; tolerance };
                        failed = true;
                      }
                  else
                    Some
                      {
                        gate;
                        label;
                        field;
                        check = Step_ok { base = b; fresh = f };
                        failed = false;
                      }
              | Some _, None ->
                  Some
                    { gate; label; field; check = Missing_fresh; failed = true }
              | None, _ -> None)
            (matched_fields gate base)
      | Max_ratio { factor; noise_floor } ->
          List.filter_map
            (fun field ->
              match (number field base, number field fresh) with
              | Some b, Some f when b >= noise_floor ->
                  if f > b *. factor then
                    Some
                      {
                        gate;
                        label;
                        field;
                        check = Regressed { base = b; fresh = f; factor };
                        failed = true;
                      }
                  else
                    Some
                      {
                        gate;
                        label;
                        field;
                        check = Step_ok { base = b; fresh = f };
                        failed = false;
                      }
              | Some b, None when b >= noise_floor ->
                  Some
                    { gate; label; field; check = Missing_fresh; failed = true }
              | _ -> None)
            (matched_fields gate base)
      | Fresh_max _ | Fresh_floor_when _ -> [])
    gates

let check_fresh ~gates ~label (fresh : fields) =
  List.concat_map
    (fun gate ->
      match gate.rule with
      | Fresh_max bound ->
          List.filter_map
            (fun field ->
              match number field fresh with
              | Some v when v > bound ->
                  Some
                    {
                      gate;
                      label;
                      field;
                      check = Fresh_exceeds { value = v; bound };
                      failed = true;
                    }
              | _ -> None)
            (matched_fields gate fresh)
      | Fresh_floor_when { enable_field; enable_at_least; floor } -> (
          let field =
            match gate.target with Field f -> f | Fields _ | Seconds_suffix _ -> ""
          in
          match number enable_field fresh with
          | Some enable when enable >= enable_at_least -> (
              match number field fresh with
              | Some v when v < floor ->
                  [
                    {
                      gate;
                      label;
                      field;
                      check = Fresh_below_floor { value = v; floor; enable };
                      failed = true;
                    };
                  ]
              | Some v ->
                  [
                    {
                      gate;
                      label;
                      field;
                      check = Fresh_floor_ok { value = v; enable };
                      failed = false;
                    };
                  ]
              | None ->
                  [
                    {
                      gate;
                      label;
                      field;
                      check = Fresh_missing_required { enable };
                      failed = true;
                    };
                  ])
          | _ -> [])
      | Max_abs_drift _ | Max_ratio _ -> [])
    gates

module Bench = Socy_obs.Doc.Bench

let record_label (r : Bench.record) = r.Bench.section ^ "/" ^ r.Bench.row

let check_docs ~gates ~(base : Bench.t) ~(fresh : Bench.t) =
  let pairwise =
    List.concat_map
      (fun (b : Bench.record) ->
        let label = record_label b in
        match
          Bench.find fresh ~section:b.Bench.section ~row:b.Bench.row
        with
        | None ->
            [
              {
                gate = row_gate;
                label;
                field = "";
                check = Row_missing;
                failed = true;
              };
            ]
        | Some f ->
            check_pair ~gates ~label ~base:b.Bench.fields ~fresh:f.Bench.fields)
      base.Bench.records
  in
  let fresh_only =
    List.concat_map
      (fun (f : Bench.record) ->
        let new_row =
          if
            Bench.find base ~section:f.Bench.section ~row:f.Bench.row = None
          then
            [
              {
                gate = row_gate;
                label = record_label f;
                field = "";
                check = Row_new;
                failed = false;
              };
            ]
          else []
        in
        check_fresh ~gates ~label:(record_label f) f.Bench.fields @ new_row)
      fresh.Bench.records
  in
  pairwise @ fresh_only

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let describe o =
  let pct b f = (f /. b -. 1.0) *. 100.0 in
  match o.check with
  | Drifted { base; fresh; drift; _ } ->
      Printf.sprintf "%s: %s drifted by %.3e (%.17g -> %.17g)" o.label o.field
        drift base fresh
  | Regressed { base; fresh; _ } -> (
      match o.gate.unit with
      | Nodes ->
          Printf.sprintf "%s: %s grew %.0f%% (%.0f -> %.0f nodes)" o.label
            o.field (pct base fresh) base fresh
      | Seconds | Plain ->
          Printf.sprintf "%s: %s regressed %.0f%% (%.3fs -> %.3fs)" o.label
            o.field (pct base fresh) base fresh)
  | Step_ok { base; fresh } -> (
      match o.gate.unit with
      | Nodes ->
          Printf.sprintf "%s: %s %.0f -> %.0f nodes" o.label o.field base fresh
      | Seconds -> Printf.sprintf "%s: %s %.3fs -> %.3fs" o.label o.field base fresh
      | Plain ->
          Printf.sprintf "%s: %s %.6g -> %.6g" o.label o.field base fresh)
  | Missing_fresh ->
      Printf.sprintf "%s: %s missing from fresh run" o.label o.field
  | Fresh_exceeds { value; _ } ->
      Printf.sprintf "%s: %s = %.3e (parallel run not equivalent to sequential)"
        o.label o.field value
  | Fresh_below_floor { value; floor; enable } ->
      Printf.sprintf "%s: %s %.2fx below the %.1fx floor at %.0f domains"
        o.label o.field value floor enable
  | Fresh_missing_required { enable } ->
      Printf.sprintf "%s: par_domains = %.0f but no %s recorded" o.label enable
        o.field
  | Fresh_floor_ok { value; enable } ->
      Printf.sprintf "%s: %s %.2fx at %.0f domains" o.label o.field value enable
  | Row_missing -> Printf.sprintf "%s: row missing from fresh run" o.label
  | Row_new -> Printf.sprintf "%s: new row (not in baseline)" o.label

let announced o =
  o.failed
  || (match o.check with Row_new -> true | _ -> o.gate.announce_pass)
