(** The declarative performance-gate table.

    One data structure answers, for every numeric field a benchmark or
    campaign document carries, the question "when is a change in this
    field a failure?" — shared by the single-baseline comparator
    ([bench/compare.ml]), the trend tracker ({!Trend}) and the campaign
    differ ({!Campaign.diff}), so the three tools can never drift apart
    on policy.

    {!default_gates} encodes exactly the historical [bench/compare.ml]
    behaviour: yield drift beyond 1e-12 fails; seconds-valued fields
    (except [wall_*], [trace_*], [gc_*]) regressing more than 25% on a
    ≥50ms baseline fail; [robdd_peak]/[peak_nodes] growing more than 10%
    fail; [seq_yield_drift]-style fields above 1e-12 fail on the fresh
    document alone; and ≥4-domain runs must report [par_speedup] ≥ 1.5×. *)

type fields = (string * Socy_obs.Json.t) list
(** One document row's fields, as parsed JSON. *)

val number : string -> fields -> float option
(** [number field fields] is the field's numeric value, if it is one. *)

(** How a field should be formatted in messages. *)
type unit_kind = Seconds | Nodes | Plain

(** Which fields a gate applies to. *)
type target =
  | Field of string  (** exactly this field *)
  | Fields of string list  (** any of these fields *)
  | Seconds_suffix of { exempt_prefixes : string list }
      (** every field ending in ["_s"] except those with an exempt
          prefix *)

(** What the gate checks. *)
type rule =
  | Max_abs_drift of float
      (** base/fresh pair: |base − fresh| beyond the tolerance fails;
          a base value missing from fresh also fails. *)
  | Max_ratio of { factor : float; noise_floor : float }
      (** base/fresh pair: fresh > base × factor fails, but only when
          base ≥ noise_floor (pass [neg_infinity] for "always"). *)
  | Fresh_max of float
      (** fresh document alone: value > bound fails. *)
  | Fresh_floor_when of {
      enable_field : string;
      enable_at_least : float;
      floor : float;
    }
      (** fresh document alone: when [enable_field] ≥ [enable_at_least],
          the target field must exist and be ≥ [floor]. *)

type gate = {
  g_name : string;  (** stable identifier, e.g. ["seconds-step"] *)
  unit : unit_kind;
  announce_pass : bool;  (** print passing checks as "ok" lines? *)
  target : target;
  rule : rule;
}

(** The result of one gate applied to one field of one row. *)
type check =
  | Drifted of { base : float; fresh : float; drift : float; tolerance : float }
  | Regressed of { base : float; fresh : float; factor : float }
  | Step_ok of { base : float; fresh : float }
  | Missing_fresh
  | Fresh_exceeds of { value : float; bound : float }
  | Fresh_below_floor of { value : float; floor : float; enable : float }
  | Fresh_missing_required of { enable : float }
  | Fresh_floor_ok of { value : float; enable : float }
  | Row_missing  (** baseline row absent from the fresh document *)
  | Row_new  (** fresh-only row; informational, never fails *)

type outcome = {
  gate : gate;
  label : string;  (** row identifier, e.g. ["table4/MS8, l'=2"] *)
  field : string;  (** empty for row-presence outcomes *)
  check : check;
  failed : bool;
}

val yield_tolerance : float
(** 1e-12 — the absolute drift budget for yield numbers. *)

val row_gate : gate
(** Synthetic gate carried by {!Row_missing}/{!Row_new} outcomes. *)

val default_gates : gate list
(** The historical [bench/compare.ml] policy, as data. *)

val target_matches : target -> string -> bool

val matched_fields : gate -> fields -> string list
(** The fields of a row this gate applies to, in field order. *)

val step_gated_fields : gates:gate list -> fields -> (string * gate) list
(** The fields a {!Max_ratio} gate would step-check — i.e. the fields
    worth a trend line. Shared with {!Trend.series_of}. *)

val check_pair : gates:gate list -> label:string -> base:fields -> fresh:fields -> outcome list
(** All pairwise (baseline vs fresh) gate outcomes for one row. *)

val check_fresh : gates:gate list -> label:string -> fields -> outcome list
(** All fresh-only gate outcomes for one row. *)

val check_docs :
  gates:gate list ->
  base:Socy_obs.Doc.Bench.t ->
  fresh:Socy_obs.Doc.Bench.t ->
  outcome list
(** Full document comparison: pairwise outcomes for shared rows,
    {!Row_missing} for baseline rows gone from fresh, fresh-only gates
    plus {!Row_new} notes for rows the baseline lacks. *)

val describe : outcome -> string
(** Human-readable one-liner, matching the historical compare output
    (["table4/MS8: cpu_s regressed 31% (0.210s -> 0.275s)"], ...). *)

val announced : outcome -> bool
(** Should this outcome be printed? Failures always; passes when the
    gate opts in; {!Row_new} always (as a note). *)
