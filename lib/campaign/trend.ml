module Bench = Socy_obs.Doc.Bench

type snapshot = { snap_label : string; bench : Bench.t }

type series = {
  section : string;
  row : string;
  field : string;
  unit : Gates.unit_kind;
  points : (string * float) list;
}

type config = {
  window : int;
  creep_factor : float;
  dip_tolerance : float;
  noise_floor_s : float;
  min_points : int;
}

let default_config =
  {
    window = 8;
    creep_factor = 1.10;
    dip_tolerance = 0.05;
    noise_floor_s = 0.05;
    min_points = 3;
  }

type finding =
  | Creep of { series : series; first : float; last : float; ratio : float }
  | Missing_row of { section : string; row : string; last_seen : string }

(* ------------------------------------------------------------------ *)
(* Series extraction                                                   *)
(* ------------------------------------------------------------------ *)

(* Which fields get a trend line is the same question as which fields get
   a step gate, so the answer comes from the shared gate table: every
   field a [Max_ratio] gate would check (seconds fields and node peaks). *)
let series_of ?(gates = Gates.default_gates) snapshots =
  let table : (string * string * string, Gates.unit_kind * (string * float) list ref)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun snap ->
      List.iter
        (fun (r : Bench.record) ->
          List.iter
            (fun (field, gate) ->
              match Gates.number field r.Bench.fields with
              | None -> ()
              | Some v -> (
                  let key = (r.Bench.section, r.Bench.row, field) in
                  match Hashtbl.find_opt table key with
                  | Some (_, points) ->
                      points := (snap.snap_label, v) :: !points
                  | None ->
                      Hashtbl.add table key
                        (gate.Gates.unit, ref [ (snap.snap_label, v) ]);
                      order := key :: !order))
            (Gates.step_gated_fields ~gates r.Bench.fields))
        snap.bench.Bench.records)
    snapshots;
  List.rev_map
    (fun ((section, row, field) as key) ->
      let unit, points =
        match Hashtbl.find_opt table key with
        | Some (u, p) -> (u, List.rev !p)
        | None -> assert false
      in
      { section; row; field; unit; points })
    !order

(* Least-squares slope of the series values over their snapshot index —
   the per-snapshot trend line the report renders. *)
let slope series =
  let n = List.length series.points in
  if n < 2 then 0.0
  else
    let nf = float_of_int n in
    let xs = List.mapi (fun i (_, v) -> (float_of_int i, v)) series.points in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 xs in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 xs in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 xs in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 xs in
    let denom = (nf *. sxx) -. (sx *. sx) in
    if denom = 0.0 then 0.0 else ((nf *. sxy) -. (sx *. sy)) /. denom

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let rec last_n n l =
  let len = List.length l in
  if len <= n then l else last_n n (List.tl l)

(* Slow creep: over the trailing window the series ends more than
   [creep_factor] above where it started AND every step on the way is an
   increase up to [dip_tolerance] of noise — a genuine regression that
   dipped hard in the middle is a step-gate matter (some commit pair
   shows the jump), not creep, and an up-down-up noisy series must not
   fire at all. *)
let creep_of_series config series =
  let points = last_n config.window series.points in
  if List.length points < config.min_points then None
  else
    let values = List.map snd points in
    let first = List.hd values in
    let last = List.nth values (List.length values - 1) in
    let below_floor =
      match series.unit with
      | Gates.Seconds -> first < config.noise_floor_s
      | Gates.Nodes | Gates.Plain -> first <= 0.0
    in
    if below_floor || first <= 0.0 then None
    else
      let monotone_ish =
        let rec go = function
          | a :: (b :: _ as rest) ->
              b >= a *. (1.0 -. config.dip_tolerance) && go rest
          | [ _ ] | [] -> true
        in
        go values
      in
      let ratio = last /. first in
      if monotone_ish && ratio > config.creep_factor then
        Some (Creep { series = { series with points }; first; last; ratio })
      else None

(* A row present in the previous snapshot but gone from the newest is the
   trend-mode form of the step gate's missing-row failure: dropping a
   benchmark silently must not pass just because history is long. *)
let missing_rows snapshots =
  match List.rev snapshots with
  | newest :: previous :: _ ->
      List.filter_map
        (fun (r : Bench.record) ->
          match
            Bench.find newest.bench ~section:r.Bench.section ~row:r.Bench.row
          with
          | Some _ -> None
          | None ->
              Some
                (Missing_row
                   {
                     section = r.Bench.section;
                     row = r.Bench.row;
                     last_seen = previous.snap_label;
                   }))
        previous.bench.Bench.records
  | _ -> []

let detect ?(config = default_config) ?gates snapshots =
  let creeps =
    List.filter_map (creep_of_series config) (series_of ?gates snapshots)
  in
  creeps @ missing_rows snapshots

let describe = function
  | Creep { series; first; last; ratio } ->
      Printf.sprintf
        "%s/%s: %s crept %.0f%% over %d snapshots (%s -> %s, every step \
         within noise)"
        series.section series.row series.field
        ((ratio -. 1.0) *. 100.0)
        (List.length series.points)
        (match series.unit with
        | Gates.Seconds -> Printf.sprintf "%.3fs" first
        | Gates.Nodes -> Printf.sprintf "%.0f nodes" first
        | Gates.Plain -> Printf.sprintf "%.6g" first)
        (match series.unit with
        | Gates.Seconds -> Printf.sprintf "%.3fs" last
        | Gates.Nodes -> Printf.sprintf "%.0f nodes" last
        | Gates.Plain -> Printf.sprintf "%.6g" last)
  | Missing_row { section; row; last_seen } ->
      Printf.sprintf "%s/%s: row missing from newest snapshot (last seen in %s)"
        section row last_seen
