module Json = Socy_obs.Json
module Obs = Socy_obs.Obs

let store_writes = Obs.counter "campaign.store.writes"
let store_runs_listed = Obs.counter "campaign.store.runs_listed"
let store_deletes = Obs.counter "campaign.store.deletes"

type entry = { id : string; dir : string }

let campaign_basename = "campaign.json"
let metrics_basename = "metrics.json"
let trace_basename = "trace.json"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Run ids sort chronologically as strings (UTC second stamp), so the
   store needs no index file: a directory listing is the history. *)
let run_id ~name ~now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%s-%04d%02d%02dT%02d%02d%02dZ" name (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let entry ~root ~id = { id; dir = Filename.concat root id }

(* Two runs inside one second (tests, tight CI loops) get a ".2", ".3"…
   suffix instead of silently overwriting the earlier artifact. *)
let create_run ~root ~name ?(now = Unix.gettimeofday ()) () =
  let base = run_id ~name ~now in
  let rec fresh i =
    let id = if i = 1 then base else Printf.sprintf "%s.%d" base i in
    let e = entry ~root ~id in
    if Sys.file_exists e.dir then fresh (i + 1)
    else begin
      mkdir_p e.dir;
      e
    end
  in
  fresh 1

let campaign_file e = Filename.concat e.dir campaign_basename

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc json);
  Obs.incr store_writes

let write_run e ?metrics ?trace doc =
  write_json (campaign_file e) doc;
  Option.iter (write_json (Filename.concat e.dir metrics_basename)) metrics;
  Option.iter (write_json (Filename.concat e.dir trace_basename)) trace

(* Every direct subdirectory holding a campaign.json, sorted by id —
   i.e. chronologically, with same-second ".n" suffixes in creation
   order. Foreign files in the root are ignored, not errors: operators
   drop READMEs and tarballs into artifact stores. *)
let list_runs ~root =
  match Sys.readdir root with
  | exception Sys_error _ -> []
  | names ->
      let runs =
        Array.to_list names
        |> List.filter_map (fun id ->
               let e = entry ~root ~id in
               if Sys.file_exists (campaign_file e) then Some e else None)
        |> List.sort (fun a b -> compare a.id b.id)
      in
      Obs.add store_runs_listed (List.length runs);
      runs

let find_run ~root ~id =
  let e = entry ~root ~id in
  if Sys.file_exists (campaign_file e) then Some e else None

(* Civil-date arithmetic (Howard Hinnant's days_from_civil), so the id's
   UTC stamp round-trips to an epoch without touching the local timezone
   (Unix.mktime interprets broken-down time as local). *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let run_timestamp id =
  (* Strip a same-second collision suffix (".2", ".3", …) first. *)
  let id =
    match String.rindex_opt id '.' with
    | Some i
      when i < String.length id - 1
           && String.for_all
                (fun c -> c >= '0' && c <= '9')
                (String.sub id (i + 1) (String.length id - i - 1)) ->
        String.sub id 0 i
    | _ -> id
  in
  let stamp_len = String.length "-00000000T000000Z" in
  if String.length id <= stamp_len then None
  else
    let stamp = String.sub id (String.length id - stamp_len) stamp_len in
    match
      Scanf.sscanf stamp "-%4d%2d%2dT%2d%2d%2dZ%!" (fun y mo d h mi s ->
          (y, mo, d, h, mi, s))
    with
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None
    | y, mo, d, h, mi, s ->
        if mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || s > 60
        then None
        else
          Some
            (float_of_int
               ((days_from_civil y mo d * 86400) + (h * 3600) + (mi * 60) + s))

(* Run directories are flat (campaign.json + optional siblings), so
   deletion is unlink-every-regular-file + rmdir — never recursive, so a
   mis-pointed store cannot cascade. *)
let delete_run e =
  match Sys.readdir e.dir with
  | exception Sys_error msg -> Error msg
  | names -> (
      let first_err = ref None in
      Array.iter
        (fun n ->
          let p = Filename.concat e.dir n in
          if not (Sys.is_directory p) then
            try Sys.remove p
            with Sys_error msg ->
              if !first_err = None then first_err := Some msg)
        names;
      match !first_err with
      | Some msg -> Error msg
      | None -> (
          match Unix.rmdir e.dir with
          | () ->
              Obs.incr store_deletes;
              Ok ()
          | exception Unix.Unix_error (err, _, _) ->
              Error
                (Printf.sprintf "%s: %s" e.dir (Unix.error_message err))))

let load_json e =
  let path = campaign_file e in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | json -> Ok json
      | exception Json.Parse_error msg ->
          Error (Printf.sprintf "%s: %s" path msg))
