module Json = Socy_obs.Json
module Obs = Socy_obs.Obs

let store_writes = Obs.counter "campaign.store.writes"
let store_runs_listed = Obs.counter "campaign.store.runs_listed"

type entry = { id : string; dir : string }

let campaign_basename = "campaign.json"
let metrics_basename = "metrics.json"
let trace_basename = "trace.json"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Run ids sort chronologically as strings (UTC second stamp), so the
   store needs no index file: a directory listing is the history. *)
let run_id ~name ~now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%s-%04d%02d%02dT%02d%02d%02dZ" name (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let entry ~root ~id = { id; dir = Filename.concat root id }

(* Two runs inside one second (tests, tight CI loops) get a ".2", ".3"…
   suffix instead of silently overwriting the earlier artifact. *)
let create_run ~root ~name ?(now = Unix.gettimeofday ()) () =
  let base = run_id ~name ~now in
  let rec fresh i =
    let id = if i = 1 then base else Printf.sprintf "%s.%d" base i in
    let e = entry ~root ~id in
    if Sys.file_exists e.dir then fresh (i + 1)
    else begin
      mkdir_p e.dir;
      e
    end
  in
  fresh 1

let campaign_file e = Filename.concat e.dir campaign_basename

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc json);
  Obs.incr store_writes

let write_run e ?metrics ?trace doc =
  write_json (campaign_file e) doc;
  Option.iter (write_json (Filename.concat e.dir metrics_basename)) metrics;
  Option.iter (write_json (Filename.concat e.dir trace_basename)) trace

(* Every direct subdirectory holding a campaign.json, sorted by id —
   i.e. chronologically, with same-second ".n" suffixes in creation
   order. Foreign files in the root are ignored, not errors: operators
   drop READMEs and tarballs into artifact stores. *)
let list_runs ~root =
  match Sys.readdir root with
  | exception Sys_error _ -> []
  | names ->
      let runs =
        Array.to_list names
        |> List.filter_map (fun id ->
               let e = entry ~root ~id in
               if Sys.file_exists (campaign_file e) then Some e else None)
        |> List.sort (fun a b -> compare a.id b.id)
      in
      Obs.add store_runs_listed (List.length runs);
      runs

let find_run ~root ~id =
  let e = entry ~root ~id in
  if Sys.file_exists (campaign_file e) then Some e else None

let load_json e =
  let path = campaign_file e in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | json -> Ok json
      | exception Json.Parse_error msg ->
          Error (Printf.sprintf "%s: %s" path msg))
