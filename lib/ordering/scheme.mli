(** Orderings of the multiple-valued variables and of the binary variables
    encoding them (Section 2 of the paper).

    A scheme combines an ordering for the multiple-valued variables
    (w, v_1, …, v_M) with an ordering for the bits inside each group. The
    resulting binary ordering keeps each group's bits contiguous — the
    precondition of the coded-ROBDD → ROMDD conversion.

    Multiple-valued orderings (paper names):
    - [wv]  : w, v_1, …, v_M
    - [wvr] : w, v_M, …, v_1
    - [vw]  : v_1, …, v_M, w
    - [vrw] : v_M, …, v_1, w
    - [t]/[w]/[h] : groups sorted by increasing {e average rank} of their
      bits under the topology / weight / H4 heuristic applied to the
      gate-level binary description of G.

    Bit orderings inside a group:
    - [ml] : most to least significant
    - [lm] : least to most significant
    - [t]/[w]/[h] : the group's bits sorted by increasing heuristic rank
      (the paper pairs each heuristic bit order with the same-named
      multiple-valued ordering; [make] enforces that pairing). *)

type mv_order = Wv | Wvr | Vw | Vrw | Heur of Heuristics.kind

type bit_order = Ml | Lm | Heur_bits of Heuristics.kind

type t = {
  mv_name : string;
  bit_name : string;
  group_position : int array;  (** group id → position in the mv ordering *)
  groups_in_order : int array;  (** position → group id *)
  level_of_input : int array;  (** circuit input id → BDD level *)
  input_of_level : int array;  (** BDD level → circuit input id *)
}

val mv_order_name : mv_order -> string
val bit_order_name : bit_order -> string

(** Inverses of the [_name] functions over the paper's short names
    ([wv], [wvr], [vw], [vrw], [t], [w], [h] / [ml], [lm], [t], [w], [h]);
    [None] on anything else. The CLI, wire protocol and ordering registry
    all share these as the canonical spelling. *)
val mv_order_of_name : string -> mv_order option

val bit_order_of_name : string -> bit_order option

(** All (mv, bit) combinations evaluated in the paper's Table 2 (with bit
    order ml) and Table 3 (mv order w with ml/lm/w bits). *)
val table2_mv_orders : mv_order list

val table3_bit_orders : bit_order list

(** [make problem ~mv ~bits] computes the concrete ordering. Raises
    [Invalid_argument] when a heuristic bit order is paired with a
    different multiple-valued ordering (the paper only allows matching
    pairs). *)
val make : Socy_encode.Problem.t -> mv:mv_order -> bits:bit_order -> t
