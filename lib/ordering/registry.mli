(** On-disk registry of tuned variable orderings.

    The autotuner ([socyield tune]) tournaments static ordering heuristics
    with and without dynamic reordering per benchmark family and persists
    the winners here; [eval]/[query]/[bench] can then resolve a family
    name to the tuned scheme instead of re-running the tournament.

    The format is a deliberately boring versioned text file — one header
    line, then one tab-separated line per family:

    {v
    socyield-orderings/1
    mult4-d100	w	ml	1	10432
    c432	vw	lm	0	88211
    v}

    Columns: family, mv-order name, bit-order name, reorder flag ([0]/[1]),
    and the peak live-node count observed when the entry was recorded
    (informational — consumers only need the first four). Names are the
    canonical {!Scheme.mv_order_name} / {!Scheme.bit_order_name}
    spellings. *)

type entry = {
  family : string;  (** benchmark family name, the lookup key *)
  mv : Scheme.mv_order;
  bit : Scheme.bit_order;
  reorder : bool;  (** sift during the coded-ROBDD build *)
  peak_nodes : int;  (** observed ROBDD peak when tuned (informational) *)
}

(** [load path] parses the registry at [path]. A missing file is an empty
    registry. Raises [Failure] with a [file:line]-prefixed message on an
    unknown header, a malformed line, or an unknown ordering name, and
    [Sys_error] on other I/O failures. *)
val load : string -> entry list

(** [save path entries] writes the registry atomically (temp file in the
    same directory, then rename), sorted by family name so files diff
    cleanly. Raises [Sys_error] on I/O failure. *)
val save : string -> entry list -> unit

(** [find entries ~family] is the entry for [family], if any. *)
val find : entry list -> family:string -> entry option

(** [upsert entries entry] replaces the entry with [entry.family]'s key,
    or adds it. *)
val upsert : entry list -> entry -> entry list
