module P = Socy_encode.Problem

type mv_order = Wv | Wvr | Vw | Vrw | Heur of Heuristics.kind

type bit_order = Ml | Lm | Heur_bits of Heuristics.kind

type t = {
  mv_name : string;
  bit_name : string;
  group_position : int array;
  groups_in_order : int array;
  level_of_input : int array;
  input_of_level : int array;
}

let mv_order_name = function
  | Wv -> "wv"
  | Wvr -> "wvr"
  | Vw -> "vw"
  | Vrw -> "vrw"
  | Heur Heuristics.Topology -> "t"
  | Heur Heuristics.Weight -> "w"
  | Heur Heuristics.H4 -> "h"

let bit_order_name = function
  | Ml -> "ml"
  | Lm -> "lm"
  | Heur_bits Heuristics.Topology -> "t"
  | Heur_bits Heuristics.Weight -> "w"
  | Heur_bits Heuristics.H4 -> "h"

let mv_order_of_name = function
  | "wv" -> Some Wv
  | "wvr" -> Some Wvr
  | "vw" -> Some Vw
  | "vrw" -> Some Vrw
  | "t" -> Some (Heur Heuristics.Topology)
  | "w" -> Some (Heur Heuristics.Weight)
  | "h" -> Some (Heur Heuristics.H4)
  | _ -> None

let bit_order_of_name = function
  | "ml" -> Some Ml
  | "lm" -> Some Lm
  | "t" -> Some (Heur_bits Heuristics.Topology)
  | "w" -> Some (Heur_bits Heuristics.Weight)
  | "h" -> Some (Heur_bits Heuristics.H4)
  | _ -> None

let table2_mv_orders =
  [
    Wv;
    Wvr;
    Vw;
    Vrw;
    Heur Heuristics.Topology;
    Heur Heuristics.Weight;
    Heur Heuristics.H4;
  ]

let table3_bit_orders = [ Ml; Lm; Heur_bits Heuristics.Weight ]

(* Group sequence (position -> group id) for each mv ordering; group 0 is
   w, groups 1..M are v_1..v_M. *)
let group_sequence problem ranks = function
  | Wv -> Array.init (P.num_groups problem) (fun i -> i)
  | Wvr ->
      Array.init (P.num_groups problem) (fun i ->
          if i = 0 then 0 else P.num_groups problem - i)
  | Vw ->
      Array.init (P.num_groups problem) (fun i ->
          if i = P.num_groups problem - 1 then 0 else i + 1)
  | Vrw ->
      Array.init (P.num_groups problem) (fun i ->
          if i = P.num_groups problem - 1 then 0 else P.num_groups problem - 1 - i)
  | Heur _ ->
      let rank =
        match ranks with
        | Some r -> r
        | None -> invalid_arg "Scheme.group_sequence: missing heuristic ranks"
      in
      (* Sort groups by increasing average rank of their encoding bits;
         stable on ties (group id order). *)
      let avg g =
        let nbits = P.bits_of_group problem g in
        let sum = ref 0 in
        for bit = 0 to nbits - 1 do
          sum := !sum + rank.(P.input_id problem ~group:g ~bit)
        done;
        float_of_int !sum /. float_of_int nbits
      in
      let groups = List.init (P.num_groups problem) (fun g -> (avg g, g)) in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) groups in
      Array.of_list (List.map snd sorted)

(* Bit sequence inside a group (positions within group -> bit index,
   bit 0 = most significant). *)
let bit_sequence problem ranks group = function
  | Ml -> Array.init (P.bits_of_group problem group) (fun b -> b)
  | Lm ->
      let n = P.bits_of_group problem group in
      Array.init n (fun b -> n - 1 - b)
  | Heur_bits _ ->
      let rank =
        match ranks with
        | Some r -> r
        | None -> invalid_arg "Scheme.bit_sequence: missing heuristic ranks"
      in
      let n = P.bits_of_group problem group in
      let bits =
        List.init n (fun b -> (rank.(P.input_id problem ~group ~bit:b), b))
      in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) bits in
      Array.of_list (List.map snd sorted)

let make problem ~mv ~bits =
  (match (mv, bits) with
  | _, (Ml | Lm) -> ()
  | Heur k1, Heur_bits k2 when k1 = k2 -> ()
  | _, Heur_bits _ ->
      invalid_arg
        "Scheme.make: a heuristic bit order must be paired with the \
         same-named multiple-valued ordering");
  let ranks =
    match (mv, bits) with
    | Heur k, _ | _, Heur_bits k -> Some (Heuristics.rank k problem.P.circuit)
    | _ -> None
  in
  let groups_in_order = group_sequence problem ranks mv in
  let num_groups = P.num_groups problem in
  let group_position = Array.make num_groups (-1) in
  Array.iteri (fun pos g -> group_position.(g) <- pos) groups_in_order;
  let nvars = P.num_binary_vars problem in
  let level_of_input = Array.make nvars (-1) in
  let input_of_level = Array.make nvars (-1) in
  let level = ref 0 in
  Array.iter
    (fun g ->
      let seq = bit_sequence problem ranks g bits in
      Array.iter
        (fun bit ->
          let input = P.input_id problem ~group:g ~bit in
          level_of_input.(input) <- !level;
          input_of_level.(!level) <- input;
          incr level)
        seq)
    groups_in_order;
  {
    mv_name = mv_order_name mv;
    bit_name = bit_order_name bits;
    group_position;
    groups_in_order;
    level_of_input;
    input_of_level;
  }
