type entry = {
  family : string;
  mv : Scheme.mv_order;
  bit : Scheme.bit_order;
  reorder : bool;
  peak_nodes : int;
}

let header = "socyield-orderings/1"

let fail path lineno fmt =
  Printf.ksprintf (fun msg -> failwith (Printf.sprintf "%s:%d: %s" path lineno msg)) fmt

let parse_line path lineno line =
  match String.split_on_char '\t' line with
  | [ family; mv_s; bit_s; reorder_s; peak_s ] ->
      if family = "" then fail path lineno "empty family name";
      let mv =
        match Scheme.mv_order_of_name mv_s with
        | Some mv -> mv
        | None -> fail path lineno "unknown mv ordering %S" mv_s
      in
      let bit =
        match Scheme.bit_order_of_name bit_s with
        | Some b -> b
        | None -> fail path lineno "unknown bit ordering %S" bit_s
      in
      let reorder =
        match reorder_s with
        | "0" -> false
        | "1" -> true
        | s -> fail path lineno "reorder flag must be 0 or 1, got %S" s
      in
      let peak_nodes =
        match int_of_string_opt peak_s with
        | Some p when p >= 0 -> p
        | _ -> fail path lineno "bad peak-node count %S" peak_s
      in
      { family; mv; bit; reorder; peak_nodes }
  | _ -> fail path lineno "expected 5 tab-separated fields"

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (match input_line ic with
        | h when h = header -> ()
        | h -> fail path 1 "unknown registry header %S (want %S)" h header
        | exception End_of_file -> fail path 1 "empty registry file");
        let entries = ref [] in
        let lineno = ref 1 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             if line <> "" then
               entries := parse_line path !lineno line :: !entries
           done
         with End_of_file -> ());
        List.rev !entries)
  end

let line_of e =
  Printf.sprintf "%s\t%s\t%s\t%d\t%d" e.family
    (Scheme.mv_order_name e.mv)
    (Scheme.bit_order_name e.bit)
    (if e.reorder then 1 else 0)
    e.peak_nodes

let save path entries =
  let entries =
    List.stable_sort (fun a b -> compare a.family b.family) entries
  in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "orderings" ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc header;
     output_char oc '\n';
     List.iter
       (fun e ->
         output_string oc (line_of e);
         output_char oc '\n')
       entries;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let find entries ~family = List.find_opt (fun e -> e.family = family) entries

let upsert entries entry =
  let replaced = ref false in
  let entries =
    List.map
      (fun e ->
        if e.family = entry.family then begin
          replaced := true;
          entry
        end
        else e)
      entries
  in
  if !replaced then entries else entries @ [ entry ]
